//! Length-prefixed binary framing: the byte layer under the typed
//! protocol of [`crate::proto`].
//!
//! # Frame layout
//!
//! Every frame is self-describing — no connection handshake state:
//!
//! ```text
//! [ u32 len ][ u32 magic "GHBA" ][ u16 version ][ u8 tag ][ body … ]
//!  \_ LE __/  \_________________ len bytes _________________/
//! ```
//!
//! `len` counts everything after itself (magic + version + tag + body),
//! so a reader always knows how many bytes to pull before touching the
//! payload. All integers are little-endian; strings are `u32` length +
//! UTF-8 bytes; `Option<T>` is a `u8` presence flag + `T`; sequences
//! are `u32` count + elements.
//!
//! # Robustness contract
//!
//! The decoder **never panics** on foreign bytes. Every malformed shape
//! maps to a typed [`WireError`]:
//!
//! * a length prefix above [`MAX_FRAME_LEN`] → [`WireError::Oversized`]
//!   (rejected *before* allocating, so a hostile 4 GiB prefix cannot
//!   balloon memory);
//! * a length too short to hold the fixed header →
//!   [`WireError::RuntFrame`];
//! * bytes that end mid-frame → [`WireError::Truncated`];
//! * wrong magic / unsupported version / unknown message tag →
//!   [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] /
//!   [`WireError::UnknownTag`];
//! * bytes left over after a complete message body →
//!   [`WireError::TrailingBytes`].
//!
//! The property suite (`tests/properties.rs`) feeds random byte
//! prefixes through [`Frame::parse`] to pin the no-panic guarantee.

use std::io::{Read, Write};

/// `"GHBA"` as a little-endian `u32` — the first payload word of every
/// frame.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"GHBA");

/// Protocol version this build speaks. Version bumps are breaking:
/// a decoder rejects every other version with
/// [`WireError::UnsupportedVersion`].
pub const WIRE_VERSION: u16 = 1;

/// Hard ceiling on a frame's post-length payload. A length prefix above
/// this is rejected before any allocation: oversized prefixes are the
/// classic way a corrupt (or hostile) peer turns one bad word into an
/// out-of-memory.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Fixed header bytes inside the length-counted payload:
/// magic (4) + version (2) + tag (1).
const FRAME_HEADER: usize = 7;

/// Everything that can go wrong at the wire layer, typed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: u32,
        /// The ceiling it violated.
        max: u32,
    },
    /// The length prefix is too small to hold magic + version + tag.
    RuntFrame {
        /// The claimed payload length.
        len: u32,
    },
    /// The buffer ended before the frame (or a field inside it) did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The first payload word was not [`WIRE_MAGIC`].
    BadMagic {
        /// The word found instead.
        found: u32,
    },
    /// The frame speaks a protocol version this build does not.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The message tag names no known message type.
    UnknownTag {
        /// The tag found.
        tag: u8,
    },
    /// An enum discriminant inside a message body is out of range.
    UnknownEnum {
        /// Which enum was being decoded.
        what: &'static str,
        /// The discriminant found.
        value: u8,
    },
    /// A string field holds invalid UTF-8.
    BadUtf8,
    /// The message body decoded completely but bytes remain inside the
    /// frame — the peer and this decoder disagree about the layout.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
    /// A `PathKey`'s fingerprint does not match its pathname: the pair
    /// was corrupted in flight (or forged).
    CorruptFingerprint {
        /// The pathname whose fingerprint failed verification.
        path: String,
    },
    /// A reply arrived out of protocol (wrong type or sequence number
    /// for the pending request).
    Protocol {
        /// What the peer violated.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            WireError::RuntFrame { len } => {
                write!(f, "frame length {len} cannot hold the frame header")
            }
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            WireError::BadMagic { found } => write!(f, "bad frame magic {found:#010x}"),
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (speaking {WIRE_VERSION})"
                )
            }
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag}"),
            WireError::UnknownEnum { what, value } => {
                write!(f, "unknown {what} discriminant {value}")
            }
            WireError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the message body")
            }
            WireError::CorruptFingerprint { path } => {
                write!(f, "fingerprint does not match path {path:?}")
            }
            WireError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A cursor over a frame body that returns [`WireError::Truncated`]
/// instead of panicking when the bytes run out.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf` with the cursor at its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// Asserts the body is fully consumed (the end-of-message check).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Append-only encoder for frame bodies (the write twin of
/// [`ByteReader`]).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// One complete wire frame: length prefix + header + message body, as
/// the exact bytes that travel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    bytes: Vec<u8>,
}

impl Frame {
    /// Frames an already-encoded message payload (`tag` + body).
    #[must_use]
    pub fn from_payload(payload: &[u8]) -> Frame {
        let len = (payload.len() + FRAME_HEADER - 1) as u32;
        let mut bytes = Vec::with_capacity(4 + len as usize);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(payload);
        Frame { bytes }
    }

    /// The full wire bytes (length prefix included).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Parses one frame from the front of `bytes`, returning the
    /// message payload (`tag` + body) and the total bytes consumed.
    /// Never panics: every malformed prefix maps to a [`WireError`]
    /// (see the module docs for the full catalogue).
    pub fn parse(bytes: &[u8]) -> Result<(&[u8], usize), WireError> {
        let mut reader = ByteReader::new(bytes);
        let len = reader.u32()?;
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        if (len as usize) < FRAME_HEADER {
            // Too short for magic + version + tag: no decodable message
            // can live here.
            return Err(WireError::RuntFrame { len });
        }
        if reader.remaining() < len as usize {
            return Err(WireError::Truncated {
                needed: len as usize,
                available: reader.remaining(),
            });
        }
        let magic = reader.u32()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = reader.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let payload_len = len as usize - (FRAME_HEADER - 1);
        let start = 4 + FRAME_HEADER - 1;
        Ok((&bytes[start..start + payload_len], 4 + len as usize))
    }
}

/// Stream-level codec: blocking frame reads/writes over any
/// `Read`/`Write` (a `TcpStream`, a unix pipe, an in-memory buffer).
#[derive(Debug)]
pub struct WireCodec;

impl WireCodec {
    /// Writes one frame carrying `payload` (`tag` + body) and flushes.
    pub fn write_payload(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
        let frame = Frame::from_payload(payload);
        w.write_all(frame.bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one frame's message payload. Returns `Ok(None)` on a clean
    /// end-of-stream (the peer closed between frames); end-of-stream
    /// *inside* a frame is an error like any other short read.
    pub fn read_payload(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
        let mut len_buf = [0u8; 4];
        let mut filled = 0;
        while filled < len_buf.len() {
            let n = r.read(&mut len_buf[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(WireError::Truncated {
                    needed: len_buf.len(),
                    available: filled,
                });
            }
            filled += n;
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized {
                len,
                max: MAX_FRAME_LEN,
            });
        }
        if (len as usize) < FRAME_HEADER {
            return Err(WireError::RuntFrame { len });
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        let mut reader = ByteReader::new(&body);
        let magic = reader.u32()?;
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic { found: magic });
        }
        let version = reader.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        Ok(Some(body.split_off(FRAME_HEADER - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_parse() {
        let payload = [7u8, 1, 2, 3];
        let frame = Frame::from_payload(&payload);
        let (parsed, consumed) = Frame::parse(frame.bytes()).expect("well-formed");
        assert_eq!(parsed, payload);
        assert_eq!(consumed, frame.bytes().len());
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Frame::parse(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn runt_and_truncated_frames_are_typed() {
        let frame = Frame::from_payload(&[9u8]);
        let cut = &frame.bytes()[..frame.bytes().len() - 1];
        assert!(matches!(
            Frame::parse(cut),
            Err(WireError::Truncated { .. })
        ));
        let runt = 3u32.to_le_bytes();
        let mut bytes = runt.to_vec();
        bytes.extend_from_slice(&[0u8; 3]);
        assert!(matches!(
            Frame::parse(&bytes),
            Err(WireError::RuntFrame { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut frame = Frame::from_payload(&[1u8]).bytes().to_vec();
        frame[4] ^= 0xFF;
        assert!(matches!(
            Frame::parse(&frame),
            Err(WireError::BadMagic { .. })
        ));
        let mut frame = Frame::from_payload(&[1u8]).bytes().to_vec();
        frame[8] = 0xEE;
        assert!(matches!(
            Frame::parse(&frame),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn codec_round_trips_over_a_buffer_and_signals_clean_eof() {
        let mut buf = Vec::new();
        WireCodec::write_payload(&mut buf, &[42u8, 9]).expect("write");
        WireCodec::write_payload(&mut buf, &[7u8]).expect("write");
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(
            WireCodec::read_payload(&mut cursor).expect("first"),
            Some(vec![42, 9])
        );
        assert_eq!(
            WireCodec::read_payload(&mut cursor).expect("second"),
            Some(vec![7])
        );
        assert!(WireCodec::read_payload(&mut cursor).expect("eof").is_none());
    }

    #[test]
    fn mid_frame_eof_is_an_error_not_a_clean_close() {
        let mut buf = Vec::new();
        WireCodec::write_payload(&mut buf, &[1u8, 2, 3]).expect("write");
        buf.truncate(buf.len() - 2);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(WireCodec::read_payload(&mut cursor).is_err());
    }

    #[test]
    fn byte_reader_truncation_is_typed_everywhere() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(WireError::Truncated { .. })));
        let mut r = ByteReader::new(&[5, 0, 0, 0, b'a']);
        assert!(matches!(r.string(), Err(WireError::Truncated { .. })));
        let mut r = ByteReader::new(&[2, 0, 0, 0, 0xFF, 0xFE]);
        assert!(matches!(r.string(), Err(WireError::BadUtf8)));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(
            r.finish(),
            Err(WireError::TrailingBytes { extra: 3 })
        ));
    }
}
