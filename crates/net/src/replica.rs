//! The replica server: one shard of the namespace, one full
//! [`GhbaCluster`], served over TCP.
//!
//! # Serve/drain lifecycle
//!
//! A replica's life has two interleaved strands:
//!
//! * **Serving** (`&self`): every connection thread answers
//!   [`NetMessage::ExecuteBatch`] through the pin-once concurrent
//!   pipeline — a **read** lock on the cluster and a call to
//!   [`MetadataService::execute_concurrent`]. Any number of batches
//!   execute in parallel; each pins one route snapshot and appends its
//!   writes to the fingerprint-sharded namespace logs.
//! * **Draining** (`&mut self`): pending write records are reconciled
//!   into the authoritative stores and staged filter publishes are
//!   flushed. Two triggers exist: the background [`Reconciler`] thread
//!   ticks on a configurable cadence
//!   ([`ReplicaConfig::drain_cadence`]), and clients force a
//!   synchronous barrier with [`NetMessage::Drain`] (answered by
//!   [`NetMessage::DrainAck`] once the **write** lock has been taken,
//!   the logs replayed, and all pending publishes pushed). Serving
//!   pauses only for the duration of the drain itself.
//!
//! The end-to-end tests exploit the split: they set a long cadence (so
//! the background thread never interferes) and place explicit `Drain`
//! barriers at phase boundaries, making the publish points — and hence
//! every outcome — deterministic.
//!
//! Beyond batches, a replica answers [`NetMessage::GroupProbe`]
//! multicasts (probing each local server's published filter with the
//! fingerprint from the frame — the wire form of the in-process
//! group multicast), adopts newer membership views from
//! [`NetMessage::Gossip`], and reports counters via
//! [`NetMessage::Stats`].

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use ghba_core::{
    ControllerConfig, GhbaCluster, GhbaConfig, GroupController, MdsId, MetadataService, Reconciler,
    SyncPolicy, WalOptions,
};

use crate::proto::NetMessage;
use crate::route::replica_config;
use crate::serve::{ServerCore, Service, ServiceReply, ERR_UNSUPPORTED};
use crate::wire::WireError;

/// How a [`ReplicaServer`] is built.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// This replica's shard index in the fleet.
    pub replica: u16,
    /// MDS servers inside this replica's cluster.
    pub servers: usize,
    /// The fleet's base cluster configuration; the per-replica seed
    /// offset is applied by [`replica_config`].
    pub base: GhbaConfig,
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub bind: String,
    /// Rendezvous address to register with, if any.
    pub rendezvous: Option<String>,
    /// Background reconciliation cadence. Long cadences effectively
    /// disable the background strand (tests drive drains explicitly).
    pub drain_cadence: Duration,
    /// When set, an online [`GroupController`] rides the reconciler
    /// cadence: each tick closes a load window
    /// ([`GhbaCluster::load_report`]) and actuates any planned
    /// split/merge/rebalance through the cluster's reconfig handle —
    /// the adaptive control plane, on by opt-in only.
    pub controller: Option<ControllerConfig>,
    /// When set, the replica is durable: on spawn it recovers the
    /// cluster from this WAL directory (checkpoint + log-tail replay;
    /// an empty directory is a fresh first boot) and every subsequent
    /// drain is write-ahead logged there.
    pub wal_dir: Option<PathBuf>,
    /// WAL sync policy (only meaningful with
    /// [`wal_dir`](ReplicaConfig::wal_dir) set).
    pub sync_policy: SyncPolicy,
    /// Install a checkpoint and truncate the log every this many WAL
    /// records; `0` disables automatic checkpoints.
    pub checkpoint_every: u64,
    /// Fault injection: `abort()` the whole process (no drain, no
    /// unwind — SIGABRT, the in-tree stand-in for SIGKILL) after
    /// serving this many `ExecuteBatch` frames. For crash-recovery
    /// harnesses only; `None` in any real deployment.
    pub crash_after_batches: Option<u64>,
}

impl ReplicaConfig {
    /// A replica of `fleet_index` with `servers` MDSs on an ephemeral
    /// loopback port, background drains every 50ms.
    #[must_use]
    pub fn new(replica: u16, servers: usize, base: GhbaConfig) -> Self {
        ReplicaConfig {
            replica,
            servers,
            base,
            bind: "127.0.0.1:0".to_string(),
            rendezvous: None,
            drain_cadence: Duration::from_millis(50),
            controller: None,
            wal_dir: None,
            sync_policy: SyncPolicy::EveryBatch,
            checkpoint_every: 0,
            crash_after_batches: None,
        }
    }

    /// Registers with a rendezvous server at `addr` on startup
    /// (builder style).
    #[must_use]
    pub fn with_rendezvous(mut self, addr: impl Into<String>) -> Self {
        self.rendezvous = Some(addr.into());
        self
    }

    /// Overrides the background drain cadence (builder style).
    #[must_use]
    pub fn with_drain_cadence(mut self, cadence: Duration) -> Self {
        self.drain_cadence = cadence;
        self
    }

    /// Enables the adaptive control plane: a [`GroupController`] with
    /// this configuration ticks on the reconciler cadence (builder
    /// style).
    #[must_use]
    pub fn with_controller(mut self, cfg: ControllerConfig) -> Self {
        self.controller = Some(cfg);
        self
    }

    /// Makes the replica durable: recover from (and keep logging to)
    /// this WAL directory (builder style).
    #[must_use]
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Overrides the WAL sync policy (builder style).
    #[must_use]
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Enables automatic checkpoints every `records` WAL records
    /// (builder style).
    #[must_use]
    pub fn with_checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = records;
        self
    }

    /// Fault injection: abort the process after `batches` served
    /// batches (builder style; see
    /// [`crash_after_batches`](ReplicaConfig::crash_after_batches)).
    #[must_use]
    pub fn with_crash_after_batches(mut self, batches: u64) -> Self {
        self.crash_after_batches = Some(batches);
        self
    }
}

/// State shared between connection threads and the reconciler.
struct ReplicaShared {
    replica: u16,
    cluster: RwLock<GhbaCluster>,
    /// Newest gossiped `(epoch, members)` view (epoch 0 = none yet).
    membership: Mutex<(u64, Vec<MdsId>)>,
    batches_served: AtomicU64,
    /// Write records reconciled over the server's lifetime (both
    /// barrier drains and background ticks).
    drained_total: AtomicU64,
    /// Reconfigurations the online controller actuated (splits +
    /// merges + rebalances) over the server's lifetime.
    adapt_actions: AtomicU64,
    /// Directory epoch the rendezvous acked our most recent
    /// registration under (0 = never registered). Strictly increases
    /// across restart/re-register cycles — including re-registration
    /// after a liveness prune.
    registration_epoch: AtomicU64,
    /// Fault injection: abort the process after this many served
    /// batches (0 = disabled; see
    /// [`ReplicaConfig::crash_after_batches`]).
    crash_after_batches: u64,
}

impl ReplicaShared {
    /// Drains under the write lock; returns records reconciled.
    fn drain(&self) -> (u64, u64) {
        let mut cluster = self.cluster.write().expect("cluster lock poisoned");
        let before = cluster.pending_concurrent_writes();
        cluster.drain_concurrent();
        let _ = cluster.flush_all_updates();
        let after = cluster.pending_concurrent_writes();
        self.drained_total
            .fetch_add(before.saturating_sub(after), Ordering::Relaxed);
        (before.saturating_sub(after), after)
    }

    /// One control-plane tick: closes the cluster's load window and
    /// actuates whatever the controller plans through the reconfig
    /// handle. Runs under the **read** lock — actuation is a
    /// one-pointer snapshot swap, so serving never pauses for it.
    fn adapt_tick(&self, controller: &mut GroupController) {
        let cluster = self.cluster.read().expect("cluster lock poisoned");
        let report = cluster.load_report();
        let handle = cluster.reconfig_handle();
        drop(cluster);
        let accepted = controller.actuate(&report, &handle);
        self.adapt_actions
            .fetch_add(accepted.len() as u64, Ordering::Relaxed);
    }
}

impl Service for ReplicaShared {
    fn handle(&self, msg: NetMessage) -> ServiceReply {
        match msg {
            NetMessage::ExecuteBatch { seq, batch } => {
                let cluster = self.cluster.read().expect("cluster lock poisoned");
                let outcomes = cluster.execute_concurrent(&batch);
                drop(cluster);
                let served = self.batches_served.fetch_add(1, Ordering::Relaxed) + 1;
                if self.crash_after_batches > 0 && served >= self.crash_after_batches {
                    // Fault injection: die like a SIGKILL would — no
                    // reply, no drain, no unwinding. Whatever the WAL
                    // synced is all recovery gets.
                    std::process::abort();
                }
                ServiceReply::Message(NetMessage::BatchReply { seq, outcomes })
            }
            NetMessage::Drain => {
                let (drained, pending) = self.drain();
                ServiceReply::Message(NetMessage::DrainAck { drained, pending })
            }
            NetMessage::GroupProbe { qid, fp } => {
                let cluster = self.cluster.read().expect("cluster lock poisoned");
                let positives = cluster
                    .server_ids()
                    .into_iter()
                    .filter(|&id| {
                        cluster
                            .mds(id)
                            .is_some_and(|mds| mds.published().contains_fp(&fp))
                    })
                    .collect();
                ServiceReply::Message(NetMessage::ProbeReply {
                    qid,
                    replica: self.replica,
                    positives,
                })
            }
            NetMessage::Gossip { epoch, members } => {
                let mut view = self.membership.lock().expect("membership poisoned");
                if epoch > view.0 {
                    *view = (epoch, members);
                }
                ServiceReply::Silent
            }
            NetMessage::Stats => {
                let pending = self
                    .cluster
                    .read()
                    .expect("cluster lock poisoned")
                    .pending_concurrent_writes();
                ServiceReply::Message(NetMessage::StatsReply {
                    pending,
                    batches_served: self.batches_served.load(Ordering::Relaxed),
                    gossip_epoch: self.membership.lock().expect("membership poisoned").0,
                })
            }
            NetMessage::Ping { nonce } => ServiceReply::Message(NetMessage::Pong { nonce }),
            NetMessage::Shutdown => ServiceReply::Shutdown,
            other => ServiceReply::Message(NetMessage::ErrorReply {
                code: ERR_UNSUPPORTED,
                detail: format!("replica does not serve {other:?}"),
            }),
        }
    }
}

/// A running replica server. Dropping it stops the reconciler and the
/// TCP server and joins every thread.
pub struct ReplicaServer {
    core: ServerCore,
    shared: Arc<ReplicaShared>,
    reconciler: Option<Reconciler>,
}

impl std::fmt::Debug for ReplicaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaServer")
            .field("replica", &self.shared.replica)
            .field("addr", &self.core.addr())
            .finish_non_exhaustive()
    }
}

impl ReplicaServer {
    /// Builds the shard cluster (seed offset per
    /// [`replica_config`]), binds, starts serving, spawns the
    /// background reconciler, and — when a rendezvous address is
    /// configured — registers, retrying for a few seconds while the
    /// rendezvous comes up.
    ///
    /// # Errors
    ///
    /// Fails when the bind fails or registration cannot reach the
    /// rendezvous.
    pub fn spawn(config: ReplicaConfig) -> std::io::Result<ReplicaServer> {
        let shard_config = replica_config(&config.base, config.replica as usize);
        let cluster = match &config.wal_dir {
            Some(dir) => GhbaCluster::recover(
                shard_config,
                config.servers,
                dir,
                WalOptions {
                    sync: config.sync_policy,
                    checkpoint_every: config.checkpoint_every,
                },
            )
            .map_err(|err| std::io::Error::other(format!("wal recovery: {err}")))?,
            None => GhbaCluster::with_servers(shard_config, config.servers),
        };
        let shared = Arc::new(ReplicaShared {
            replica: config.replica,
            cluster: RwLock::new(cluster),
            membership: Mutex::new((0, Vec::new())),
            batches_served: AtomicU64::new(0),
            drained_total: AtomicU64::new(0),
            adapt_actions: AtomicU64::new(0),
            registration_epoch: AtomicU64::new(0),
            crash_after_batches: config.crash_after_batches.unwrap_or(0),
        });
        let core = ServerCore::spawn(
            &config.bind,
            "replica",
            Arc::<ReplicaShared>::clone(&shared) as Arc<dyn Service>,
        )?;
        let reconciler = {
            let shared = Arc::clone(&shared);
            let mut controller = config.controller.clone().map(GroupController::new);
            Reconciler::spawn(config.drain_cadence, move || {
                let _ = shared.drain();
                if let Some(controller) = controller.as_mut() {
                    shared.adapt_tick(controller);
                }
            })
        };
        let server = ReplicaServer {
            core,
            shared,
            reconciler: Some(reconciler),
        };
        if let Some(rendezvous) = &config.rendezvous {
            server.register(rendezvous)?;
        }
        Ok(server)
    }

    /// Registers this replica's serving address with the rendezvous,
    /// retrying the connection for ~5s.
    fn register(&self, rendezvous: &str) -> std::io::Result<()> {
        let mut last_err = None;
        for _ in 0..100 {
            match std::net::TcpStream::connect(rendezvous) {
                Ok(mut stream) => {
                    let msg = NetMessage::RegisterReplica {
                        replica: self.shared.replica,
                        addr: self.core.addr().to_string(),
                    };
                    if let Err(err) = msg.write_to(&mut stream) {
                        last_err = Some(wire_to_io(err));
                    } else {
                        let mut reader = std::io::BufReader::new(stream);
                        return match NetMessage::read_from(&mut reader) {
                            Ok(Some(NetMessage::RegisterAck { epoch })) => {
                                // The directory epoch our entry became
                                // visible under — strictly above any
                                // epoch that pruned a previous
                                // incarnation of this replica.
                                self.shared
                                    .registration_epoch
                                    .store(epoch, Ordering::Release);
                                Ok(())
                            }
                            Ok(reply) => Err(std::io::Error::other(format!(
                                "unexpected registration reply: {reply:?}"
                            ))),
                            Err(err) => Err(wire_to_io(err)),
                        };
                    }
                }
                Err(err) => last_err = Some(err),
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("registration failed")))
    }

    /// The bound serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// This replica's shard index.
    #[must_use]
    pub fn replica(&self) -> u16 {
        self.shared.replica
    }

    /// Write records reconciled since startup.
    #[must_use]
    pub fn drained_total(&self) -> u64 {
        self.shared.drained_total.load(Ordering::Relaxed)
    }

    /// Reconfigurations the online controller actuated since startup
    /// (0 when [`ReplicaConfig::controller`] is unset).
    #[must_use]
    pub fn adapt_actions(&self) -> u64 {
        self.shared.adapt_actions.load(Ordering::Relaxed)
    }

    /// The rendezvous directory epoch this replica's most recent
    /// registration was acked under (0 when never registered). After a
    /// recovery re-registration this is strictly above the epoch any
    /// liveness prune of the previous incarnation bumped the directory
    /// to.
    #[must_use]
    pub fn registration_epoch(&self) -> u64 {
        self.shared.registration_epoch.load(Ordering::Acquire)
    }

    /// `true` once a stop has been requested (locally or by a remote
    /// [`NetMessage::Shutdown`] frame) — the binaries poll this.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.core.is_stopped()
    }

    /// Stops the reconciler (running one final drain) and the TCP
    /// server, joining every thread.
    pub fn shutdown(mut self) {
        if let Some(reconciler) = self.reconciler.take() {
            reconciler.shutdown();
        }
        self.core.shutdown();
    }

    /// In-process crash injection: stops the TCP server and the
    /// reconciler **without** the final drain (the reconciler thread is
    /// aborted, not shut down), then drops the cluster — un-drained
    /// shard writes and un-synced WAL buffers are lost exactly as a
    /// process kill would lose them. The WAL directory survives for a
    /// successor [`spawn`](ReplicaServer::spawn) to recover from.
    pub fn kill(mut self) {
        if let Some(reconciler) = self.reconciler.take() {
            reconciler.abort();
        }
        self.core.shutdown();
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        if let Some(reconciler) = self.reconciler.take() {
            reconciler.shutdown();
        }
        self.core.shutdown();
    }
}

fn wire_to_io(err: WireError) -> std::io::Error {
    match err {
        WireError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rendezvous::Rendezvous;
    use ghba_core::OpBatch;
    use std::io::BufReader;
    use std::net::TcpStream;

    fn config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(10_000)
            .with_lru_capacity(0)
    }

    fn request(addr: SocketAddr, msg: &NetMessage) -> NetMessage {
        let mut stream = TcpStream::connect(addr).expect("connect");
        msg.write_to(&mut stream).expect("send");
        let mut reader = BufReader::new(stream);
        NetMessage::read_from(&mut reader)
            .expect("well-formed reply")
            .expect("a reply")
    }

    #[test]
    fn serves_batches_and_drains_on_request() {
        let server = ReplicaServer::spawn(
            ReplicaConfig::new(0, 4, config()).with_drain_cadence(Duration::from_secs(3600)),
        )
        .expect("spawn");
        let mut batch = OpBatch::new().with_entry(ghba_core::EntryPolicy::Pinned(MdsId(2)));
        batch.push_create("/r/a");
        batch.push_lookup("/r/a");
        let reply = request(server.addr(), &NetMessage::ExecuteBatch { seq: 7, batch });
        let NetMessage::BatchReply { seq, outcomes } = reply else {
            panic!("got {reply:?}");
        };
        assert_eq!(seq, 7);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].home(), Some(MdsId(2)));

        let ack = request(server.addr(), &NetMessage::Drain);
        let NetMessage::DrainAck { drained, pending } = ack else {
            panic!("got {ack:?}");
        };
        assert!(drained >= 1, "the create was pending");
        assert_eq!(pending, 0);
        server.shutdown();
    }

    #[test]
    fn background_reconciler_drains_without_barriers() {
        let server = ReplicaServer::spawn(
            ReplicaConfig::new(0, 2, config()).with_drain_cadence(Duration::from_millis(5)),
        )
        .expect("spawn");
        let mut batch = OpBatch::new().with_entry(ghba_core::EntryPolicy::Pinned(MdsId(0)));
        batch.push_create("/bg/a");
        request(server.addr(), &NetMessage::ExecuteBatch { seq: 0, batch });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let NetMessage::StatsReply { pending, .. } = request(server.addr(), &NetMessage::Stats)
            else {
                panic!("stats reply");
            };
            if pending == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "reconciler never drained the pending create"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(server.drained_total() >= 1);
        server.shutdown();
    }

    #[test]
    fn gossip_adopts_only_newer_epochs() {
        let server = ReplicaServer::spawn(
            ReplicaConfig::new(1, 2, config()).with_drain_cadence(Duration::from_secs(3600)),
        )
        .expect("spawn");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        NetMessage::Gossip {
            epoch: 5,
            members: vec![MdsId(0)],
        }
        .write_to(&mut stream)
        .expect("send");
        NetMessage::Gossip {
            epoch: 3,
            members: vec![MdsId(9)],
        }
        .write_to(&mut stream)
        .expect("send");
        // Same connection: the Stats request is handled after both
        // gossip frames.
        NetMessage::Stats.write_to(&mut stream).expect("send");
        let mut reader = BufReader::new(stream);
        let reply = NetMessage::read_from(&mut reader)
            .expect("well-formed")
            .expect("a reply");
        let NetMessage::StatsReply { gossip_epoch, .. } = reply else {
            panic!("got {reply:?}");
        };
        assert_eq!(gossip_epoch, 5, "older epoch must not regress the view");
        server.shutdown();
    }

    #[test]
    fn group_probe_reports_published_homes() {
        let server = ReplicaServer::spawn(
            ReplicaConfig::new(0, 4, config()).with_drain_cadence(Duration::from_secs(3600)),
        )
        .expect("spawn");
        let mut batch = OpBatch::new().with_entry(ghba_core::EntryPolicy::Pinned(MdsId(3)));
        batch.push_create("/probe/x");
        request(server.addr(), &NetMessage::ExecuteBatch { seq: 0, batch });
        // Publish via drain so the published filters see the create.
        request(server.addr(), &NetMessage::Drain);
        let fp = *ghba_core::PathKey::new("/probe/x").fingerprint();
        let reply = request(server.addr(), &NetMessage::GroupProbe { qid: 11, fp });
        let NetMessage::ProbeReply {
            qid,
            replica,
            positives,
        } = reply
        else {
            panic!("got {reply:?}");
        };
        assert_eq!((qid, replica), (11, 0));
        assert!(
            positives.contains(&MdsId(3)),
            "published filter must claim the create (got {positives:?})"
        );
        server.shutdown();
    }

    #[test]
    fn controller_splits_hot_group_under_live_traffic() {
        // 16 servers in two groups of 8: pinning every lookup into the
        // first group gives it a 1.0 traffic share (fair is 0.5, hot
        // threshold 0.8), so the controller riding the reconciler
        // cadence must split it — without pausing the serving strand.
        let server = ReplicaServer::spawn(
            ReplicaConfig::new(0, 16, config().with_max_group_size(8))
                .with_drain_cadence(Duration::from_millis(10))
                .with_controller(ghba_core::ControllerConfig::default()),
        )
        .expect("spawn");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut seq = 0u64;
        while server.adapt_actions() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "controller never actuated on an all-hot group"
            );
            let mut batch = OpBatch::new().with_entry(ghba_core::EntryPolicy::Pinned(MdsId(0)));
            for i in 0..96 {
                batch.push_lookup(format!("/hot/f{i}"));
            }
            let reply = request(server.addr(), &NetMessage::ExecuteBatch { seq, batch });
            assert!(matches!(reply, NetMessage::BatchReply { .. }));
            seq += 1;
        }
        // Serving continues across the actuated reconfiguration.
        let mut batch = OpBatch::new().with_entry(ghba_core::EntryPolicy::Pinned(MdsId(0)));
        batch.push_create("/hot/after");
        batch.push_lookup("/hot/after");
        let reply = request(server.addr(), &NetMessage::ExecuteBatch { seq, batch });
        let NetMessage::BatchReply { outcomes, .. } = reply else {
            panic!("got {reply:?}");
        };
        assert!(outcomes[1].home().is_some(), "lookup after split resolves");
        server.shutdown();
    }

    #[test]
    fn registers_with_rendezvous_on_spawn() {
        let rendezvous = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let server = ReplicaServer::spawn(
            ReplicaConfig::new(2, 2, config())
                .with_rendezvous(rendezvous.addr().to_string())
                .with_drain_cadence(Duration::from_secs(3600)),
        )
        .expect("spawn");
        let (epoch, replicas) = rendezvous.snapshot();
        assert_eq!(epoch, 1);
        assert_eq!(replicas, vec![(2, server.addr().to_string())]);
        server.shutdown();
        rendezvous.shutdown();
    }
}
