//! A real multi-process networked deployment of the G-HBA pipeline:
//! wire protocol, rendezvous/replica servers, a fleet client, and a
//! loopback harness — `std::net` TCP only, zero external dependencies.
//!
//! The simulation crates model the paper's cluster in one process;
//! this crate runs it as processes. The namespace is sharded across
//! `R` replica servers by admission fingerprint ([`replica_of`]), each
//! replica owning a full `GhbaCluster` whose batches execute through
//! the pin-once concurrent pipeline. A rendezvous service maps shard
//! indices to addresses; clients discover the fleet there and route
//! every batch with [`execute_sharded`] — the *same* planner the
//! in-process [`Federation`] ground truth uses, which is what lets the
//! end-to-end tests demand bit-identical outcomes across the wire.
//!
//! # Layers
//!
//! * [`wire`] — length-prefixed, versioned binary framing
//!   (`Frame`/`WireCodec`) with typed, panic-free decode errors;
//! * [`proto`] — the [`NetMessage`] set: batch execution, membership
//!   gossip, group-probe multicasts, drain barriers, stats;
//! * [`route`] — fingerprint sharding, the [`BatchTransport`] seam,
//!   the two-wave cross-replica rename plan, and the in-process
//!   [`Federation`];
//! * [`rendezvous`] / [`replica`] — the servers behind the
//!   `rendezvous` and `replica` binaries;
//! * [`client`] — [`NetClient`], the fleet-wide transport (plus
//!   [`record_batches`] translating trace records into op batches);
//! * [`loopback`] — [`LoopbackNet`], the whole fleet in one process on
//!   ephemeral `127.0.0.1` ports, for tests and benches.
//!
//! # Binaries
//!
//! `rendezvous --bind <addr>`, `replica --index <i> ...`, and
//! `loadgen --clients <k> ...` compose into a real deployment; see
//! each binary's `--help`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batching;
pub mod client;
pub mod loopback;
pub mod proto;
pub mod rendezvous;
pub mod replica;
pub mod route;
mod serve;
pub mod wire;

pub use batching::{record_batches, RecordBatches};
pub use client::{send_shutdown, NetClient, ReplicaStats, RetryPolicy};
pub use loopback::{FleetSpec, LoopbackNet};
pub use proto::NetMessage;
pub use rendezvous::Rendezvous;
pub use replica::{ReplicaConfig, ReplicaServer};
pub use route::{execute_sharded, replica_config, replica_of, BatchTransport, Federation};
pub use wire::{Frame, WireCodec, WireError, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION};
