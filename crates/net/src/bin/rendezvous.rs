//! The rendezvous binary: the fleet's membership directory.
//!
//! ```text
//! rendezvous [--bind ADDR] [--addr-file PATH]
//!            [--liveness-ms MS] [--strikes K]
//! ```
//!
//! Binds (default `127.0.0.1:0`), prints `rendezvous listening on
//! <addr>` to stdout, optionally writes the bare address to
//! `--addr-file` (so scripts launching with an ephemeral port can find
//! it), then serves until a `Shutdown` frame arrives. `--liveness-ms`
//! enables the health sweep: replicas that miss `--strikes`
//! (default 3) consecutive pings are pruned from the directory.

use std::time::Duration;

use ghba_net::Rendezvous;

fn usage() -> ! {
    eprintln!(
        "usage: rendezvous [--bind ADDR] [--addr-file PATH] [--liveness-ms MS] [--strikes K]"
    );
    std::process::exit(2);
}

fn main() {
    let mut bind = "127.0.0.1:0".to_string();
    let mut addr_file: Option<String> = None;
    let mut liveness_ms: Option<u64> = None;
    let mut strikes = 3u32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--bind" => bind = args.next().unwrap_or_else(|| usage()),
            "--addr-file" => addr_file = Some(args.next().unwrap_or_else(|| usage())),
            "--liveness-ms" => {
                liveness_ms = args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            "--strikes" => {
                strikes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let spawned = match liveness_ms {
        Some(ms) => Rendezvous::spawn_with_liveness(&bind, Duration::from_millis(ms), strikes),
        None => Rendezvous::spawn(&bind),
    };
    let server = match spawned {
        Ok(server) => server,
        Err(err) => {
            eprintln!("rendezvous: cannot bind {bind}: {err}");
            std::process::exit(1);
        }
    };
    println!("rendezvous listening on {}", server.addr());
    if let Some(path) = &addr_file {
        if let Err(err) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("rendezvous: cannot write {path}: {err}");
            server.shutdown();
            std::process::exit(1);
        }
    }
    while !server.is_stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();
}
