//! The rendezvous binary: the fleet's membership directory.
//!
//! ```text
//! rendezvous [--bind ADDR] [--addr-file PATH]
//! ```
//!
//! Binds (default `127.0.0.1:0`), prints `rendezvous listening on
//! <addr>` to stdout, optionally writes the bare address to
//! `--addr-file` (so scripts launching with an ephemeral port can find
//! it), then serves until a `Shutdown` frame arrives.

use std::time::Duration;

use ghba_net::Rendezvous;

fn usage() -> ! {
    eprintln!("usage: rendezvous [--bind ADDR] [--addr-file PATH]");
    std::process::exit(2);
}

fn main() {
    let mut bind = "127.0.0.1:0".to_string();
    let mut addr_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--bind" => bind = args.next().unwrap_or_else(|| usage()),
            "--addr-file" => addr_file = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let server = match Rendezvous::spawn(&bind) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("rendezvous: cannot bind {bind}: {err}");
            std::process::exit(1);
        }
    };
    println!("rendezvous listening on {}", server.addr());
    if let Some(path) = &addr_file {
        if let Err(err) = std::fs::write(path, server.addr().to_string()) {
            eprintln!("rendezvous: cannot write {path}: {err}");
            server.shutdown();
            std::process::exit(1);
        }
    }
    while !server.is_stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();
}
