//! The replica binary: one namespace shard, one full G-HBA cluster,
//! served over TCP.
//!
//! ```text
//! replica --index I --rendezvous ADDR [--servers N] [--bind ADDR]
//!         [--cadence-ms MS] [--filter-capacity N] [--seed S]
//!         [--adaptive] [--target-m M]
//!         [--wal-dir DIR] [--sync-policy every|group:<ms>|none]
//!         [--checkpoint-every N] [--crash-after-batches N]
//! ```
//!
//! Builds the shard's cluster (per-replica seed derived from `--seed`
//! exactly as every other deployment derives it), binds, registers
//! with the rendezvous, prints `replica I listening on <addr>`, and
//! serves until a `Shutdown` frame arrives. The background reconciler
//! drains the concurrent write logs every `--cadence-ms` milliseconds.
//! `--adaptive` rides the same cadence with an online group controller
//! (the paper's M* model); `--target-m M` pins the controller's target
//! group size instead (implies `--adaptive`).
//!
//! `--wal-dir DIR` makes the shard durable: on startup the cluster is
//! recovered from `DIR` (checkpoint + WAL-tail replay; an empty
//! directory is a fresh first boot), it re-registers with the
//! rendezvous under a bumped directory epoch, and every subsequent
//! drain is write-ahead logged. `--sync-policy` picks the durability
//! point (`every` = fdatasync per batch, `group:<ms>` = group commit,
//! `none` = OS-paced), `--checkpoint-every N` bounds the log.
//! `--crash-after-batches N` is fault injection: the process aborts
//! (SIGABRT — no drain, no unwind) after serving N batches, so
//! kill-and-recover harnesses can crash a replica mid-load
//! deterministically.

use std::time::Duration;

use ghba_core::{ControllerConfig, GhbaConfig, SyncPolicy, TargetM};
use ghba_net::{ReplicaConfig, ReplicaServer};

fn usage() -> ! {
    eprintln!(
        "usage: replica --index I --rendezvous ADDR [--servers N] [--bind ADDR] \
         [--cadence-ms MS] [--filter-capacity N] [--seed S] [--adaptive] [--target-m M] \
         [--wal-dir DIR] [--sync-policy every|group:<ms>|none] [--checkpoint-every N] \
         [--crash-after-batches N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("replica: bad or missing value for {flag}");
        usage();
    })
}

fn parse_sync_policy(value: Option<String>) -> SyncPolicy {
    let Some(value) = value else { usage() };
    match value.as_str() {
        "every" => SyncPolicy::EveryBatch,
        "none" => SyncPolicy::None,
        other => match other.strip_prefix("group:").and_then(|ms| ms.parse().ok()) {
            Some(ms) => SyncPolicy::GroupCommit(Duration::from_millis(ms)),
            None => {
                eprintln!("replica: bad --sync-policy {other:?} (every|group:<ms>|none)");
                usage();
            }
        },
    }
}

fn main() {
    let mut index: Option<u16> = None;
    let mut rendezvous: Option<String> = None;
    let mut servers = 8usize;
    let mut bind = "127.0.0.1:0".to_string();
    let mut cadence_ms = 50u64;
    let mut filter_capacity: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut adaptive = false;
    let mut target_m: Option<usize> = None;
    let mut wal_dir: Option<String> = None;
    let mut sync_policy = SyncPolicy::EveryBatch;
    let mut checkpoint_every = 0u64;
    let mut crash_after_batches: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--index" => index = Some(parse(args.next(), "--index")),
            "--rendezvous" => rendezvous = Some(args.next().unwrap_or_else(|| usage())),
            "--servers" => servers = parse(args.next(), "--servers"),
            "--bind" => bind = args.next().unwrap_or_else(|| usage()),
            "--cadence-ms" => cadence_ms = parse(args.next(), "--cadence-ms"),
            "--filter-capacity" => filter_capacity = Some(parse(args.next(), "--filter-capacity")),
            "--seed" => seed = Some(parse(args.next(), "--seed")),
            "--adaptive" => adaptive = true,
            "--target-m" => target_m = Some(parse(args.next(), "--target-m")),
            "--wal-dir" => wal_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--sync-policy" => sync_policy = parse_sync_policy(args.next()),
            "--checkpoint-every" => checkpoint_every = parse(args.next(), "--checkpoint-every"),
            "--crash-after-batches" => {
                crash_after_batches = Some(parse(args.next(), "--crash-after-batches"));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(index) = index else { usage() };
    let Some(rendezvous) = rendezvous else {
        usage()
    };

    let mut base = GhbaConfig::default();
    if let Some(capacity) = filter_capacity {
        base = base.with_filter_capacity(capacity);
    }
    if let Some(seed) = seed {
        base = base.with_seed(seed);
    }
    let controller = match target_m {
        Some(m) => Some(ControllerConfig::default().with_target(TargetM::Fixed(m))),
        None if adaptive => Some(ControllerConfig::default()),
        None => None,
    };
    let config = ReplicaConfig {
        replica: index,
        servers,
        base,
        bind,
        rendezvous: Some(rendezvous),
        drain_cadence: Duration::from_millis(cadence_ms),
        controller,
        wal_dir: wal_dir.map(Into::into),
        sync_policy,
        checkpoint_every,
        crash_after_batches,
    };
    let server = match ReplicaServer::spawn(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("replica {index}: startup failed: {err}");
            std::process::exit(1);
        }
    };
    println!("replica {index} listening on {}", server.addr());
    while !server.is_stopped() {
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();
}
