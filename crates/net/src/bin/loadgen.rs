//! The load-generator binary: a fleet of K client threads replaying
//! intensified Zipf traces against a networked deployment.
//!
//! ```text
//! loadgen --rendezvous ADDR --replicas R [--clients K] [--ops N]
//!         [--batch B] [--profile res|ins|hp] [--seed S]
//!         [--shared-ratio F] [--shutdown]
//! ```
//!
//! Each client replays its own stream of the "intensified Zipf,
//! K-client partition" profile (`ghba_trace::ClientPartition`):
//! mutations stay in the client's private namespace, a `--shared-ratio`
//! fraction of reads hammers the shared Zipf-hot head. Batches of
//! `--batch` ops route through the sharded planner over one connection
//! set per client. On completion the tool reports aggregate ops/s and
//! batch-latency percentiles; `--shutdown` then stops the fleet.

use std::time::{Duration, Instant};

use ghba_core::EntryPolicy;
use ghba_net::{record_batches, NetClient};
use ghba_simnet::LatencyStats;
use ghba_trace::{ClientPartition, WorkloadProfile};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --rendezvous ADDR --replicas R [--clients K] [--ops N] [--batch B] \
         [--profile res|ins|hp] [--seed S] [--shared-ratio F] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("loadgen: bad or missing value for {flag}");
        usage();
    })
}

fn main() {
    let mut rendezvous: Option<String> = None;
    let mut replicas: Option<usize> = None;
    let mut clients = 2u32;
    let mut ops = 20_000usize;
    let mut batch = 128usize;
    let mut profile = "res".to_string();
    let mut seed = 0x4E37u64;
    let mut shared_ratio: Option<f64> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--rendezvous" => rendezvous = Some(args.next().unwrap_or_else(|| usage())),
            "--replicas" => replicas = Some(parse(args.next(), "--replicas")),
            "--clients" => clients = parse(args.next(), "--clients"),
            "--ops" => ops = parse(args.next(), "--ops"),
            "--batch" => batch = parse(args.next(), "--batch"),
            "--profile" => profile = args.next().unwrap_or_else(|| usage()),
            "--seed" => seed = parse(args.next(), "--seed"),
            "--shared-ratio" => shared_ratio = Some(parse(args.next(), "--shared-ratio")),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(rendezvous) = rendezvous else {
        usage()
    };
    let Some(replicas) = replicas else { usage() };
    let profile = match profile.as_str() {
        "res" => WorkloadProfile::res(),
        "ins" => WorkloadProfile::ins(),
        "hp" => WorkloadProfile::hp(),
        other => {
            eprintln!("loadgen: unknown profile {other}");
            usage();
        }
    };

    let mut fleet = ClientPartition::new(profile, clients, seed);
    if let Some(ratio) = shared_ratio {
        fleet = fleet.with_shared_read_ratio(ratio);
    }

    let started = Instant::now();
    let mut handles = Vec::with_capacity(clients as usize);
    for k in 0..clients {
        let fleet = fleet.clone();
        let rendezvous = rendezvous.clone();
        handles.push(std::thread::spawn(
            move || -> Result<(u64, LatencyStats), String> {
                let mut client = NetClient::connect(&rendezvous, replicas, Duration::from_secs(30))
                    .map_err(|err| format!("client {k}: connect failed: {err}"))?;
                let mut stats = LatencyStats::default();
                let mut executed = 0u64;
                let records = fleet.client(k).take(ops);
                let policy = EntryPolicy::RoundRobin { start: k as usize };
                for batch in record_batches(records, batch, policy) {
                    let len = batch.len() as u64;
                    let t0 = Instant::now();
                    client
                        .execute(&batch)
                        .map_err(|err| format!("client {k}: batch failed: {err}"))?;
                    stats.record(t0.elapsed());
                    executed += len;
                }
                Ok((executed, stats))
            },
        ));
    }

    let mut total_ops = 0u64;
    let mut merged = LatencyStats::default();
    for handle in handles {
        match handle.join() {
            Ok(Ok((executed, stats))) => {
                total_ops += executed;
                merged.merge(&stats);
            }
            Ok(Err(err)) => {
                eprintln!("loadgen: {err}");
                std::process::exit(1);
            }
            Err(_) => {
                eprintln!("loadgen: a client thread panicked");
                std::process::exit(1);
            }
        }
    }
    let elapsed = started.elapsed();
    let ops_per_sec = total_ops as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {total_ops} ops over {clients} clients x {replicas} replicas in {:.2}s = {:.0} ops/s",
        elapsed.as_secs_f64(),
        ops_per_sec
    );
    println!(
        "batch latency: mean {:?}  p50 {:?}  p90 {:?}  p99 {:?}  max {:?} ({} batches)",
        merged.mean(),
        merged.percentile(50.0),
        merged.percentile(90.0),
        merged.percentile(99.0),
        merged.max(),
        merged.count()
    );

    if shutdown {
        if let Ok(mut client) = NetClient::connect(&rendezvous, replicas, Duration::from_secs(5)) {
            let _ = client.shutdown_fleet();
        }
        let _ = ghba_net::send_shutdown(&rendezvous);
    }
}
