//! The loopback harness: a whole fleet — rendezvous plus `R` replica
//! servers — inside one process, on ephemeral `127.0.0.1` ports.
//!
//! This is real TCP end to end (real frames, real accept loops, real
//! thread-per-connection replicas), just without process boundaries —
//! the configuration the end-to-end tests and the `net_throughput`
//! bench run, and a deterministic twin of the multi-process deployment
//! the binaries provide.
//!
//! [`LoopbackNet::ground_truth`] builds the in-process
//! [`Federation`] with the *same* base config, replica count, and
//! seed derivation, so a test can replay identical batches through
//! both transports and demand bit-identical outcomes.

use std::time::Duration;

use ghba_core::GhbaConfig;

use crate::client::NetClient;
use crate::rendezvous::Rendezvous;
use crate::replica::{ReplicaConfig, ReplicaServer};
use crate::route::Federation;
use crate::wire::WireError;

/// The shape of a loopback fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of replica servers (namespace shards).
    pub replicas: usize,
    /// MDS servers per replica cluster.
    pub servers: usize,
    /// Base cluster configuration (per-replica seeds derive from it).
    pub base: GhbaConfig,
    /// Background reconciliation cadence for every replica.
    pub drain_cadence: Duration,
}

impl FleetSpec {
    /// A fleet of `replicas` shards with `servers` MDSs each and a
    /// one-hour cadence — background drains effectively disabled, so
    /// tests control every publish point with explicit barriers.
    #[must_use]
    pub fn new(replicas: usize, servers: usize, base: GhbaConfig) -> Self {
        FleetSpec {
            replicas,
            servers,
            base,
            drain_cadence: Duration::from_secs(3600),
        }
    }

    /// Overrides the background drain cadence (builder style).
    #[must_use]
    pub fn with_drain_cadence(mut self, cadence: Duration) -> Self {
        self.drain_cadence = cadence;
        self
    }
}

/// A running loopback fleet. Dropping it shuts everything down.
#[derive(Debug)]
pub struct LoopbackNet {
    spec: FleetSpec,
    rendezvous: Rendezvous,
    replicas: Vec<ReplicaServer>,
}

impl LoopbackNet {
    /// Launches the rendezvous and every replica (each registering
    /// itself), all on ephemeral loopback ports.
    ///
    /// # Errors
    ///
    /// Fails when any bind or registration fails.
    pub fn launch(spec: FleetSpec) -> std::io::Result<LoopbackNet> {
        assert!(spec.replicas > 0, "a fleet needs at least one replica");
        let rendezvous = Rendezvous::spawn("127.0.0.1:0")?;
        let rendezvous_addr = rendezvous.addr().to_string();
        let mut replicas = Vec::with_capacity(spec.replicas);
        for r in 0..spec.replicas {
            replicas.push(ReplicaServer::spawn(
                ReplicaConfig::new(r as u16, spec.servers, spec.base.clone())
                    .with_rendezvous(rendezvous_addr.clone())
                    .with_drain_cadence(spec.drain_cadence),
            )?);
        }
        Ok(LoopbackNet {
            spec,
            rendezvous,
            replicas,
        })
    }

    /// The rendezvous address clients connect to.
    #[must_use]
    pub fn rendezvous_addr(&self) -> String {
        self.rendezvous.addr().to_string()
    }

    /// The fleet's shape.
    #[must_use]
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Connects a new client to the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates discovery or connection failures.
    pub fn client(&self) -> Result<NetClient, WireError> {
        NetClient::connect(
            &self.rendezvous_addr(),
            self.spec.replicas,
            Duration::from_secs(10),
        )
    }

    /// The in-process twin of this fleet: identical base config,
    /// replica count, server count, and seed derivation. Replaying the
    /// same batches through it must yield bit-identical outcomes.
    #[must_use]
    pub fn ground_truth(&self) -> Federation {
        Federation::new(&self.spec.base, self.spec.replicas, self.spec.servers)
    }

    /// Shuts the whole fleet down, joining every thread.
    pub fn shutdown(self) {
        for replica in self.replicas {
            replica.shutdown();
        }
        self.rendezvous.shutdown();
    }
}
