//! The loopback harness: a whole fleet — rendezvous plus `R` replica
//! servers — inside one process, on ephemeral `127.0.0.1` ports.
//!
//! This is real TCP end to end (real frames, real accept loops, real
//! thread-per-connection replicas), just without process boundaries —
//! the configuration the end-to-end tests and the `net_throughput`
//! bench run, and a deterministic twin of the multi-process deployment
//! the binaries provide.
//!
//! [`LoopbackNet::ground_truth`] builds the in-process
//! [`Federation`] with the *same* base config, replica count, and
//! seed derivation, so a test can replay identical batches through
//! both transports and demand bit-identical outcomes.

use std::path::PathBuf;
use std::time::Duration;

use ghba_core::{GhbaConfig, SyncPolicy};

use crate::client::NetClient;
use crate::rendezvous::Rendezvous;
use crate::replica::{ReplicaConfig, ReplicaServer};
use crate::route::Federation;
use crate::wire::WireError;

/// The shape of a loopback fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of replica servers (namespace shards).
    pub replicas: usize,
    /// MDS servers per replica cluster.
    pub servers: usize,
    /// Base cluster configuration (per-replica seeds derive from it).
    pub base: GhbaConfig,
    /// Background reconciliation cadence for every replica.
    pub drain_cadence: Duration,
    /// Durability root: replica `r` logs under `<wal_root>/replica-r`.
    /// `None` keeps the fleet in-memory.
    pub wal_root: Option<PathBuf>,
    /// WAL sync policy for every replica (ignored without `wal_root`).
    pub sync_policy: SyncPolicy,
}

impl FleetSpec {
    /// A fleet of `replicas` shards with `servers` MDSs each and a
    /// one-hour cadence — background drains effectively disabled, so
    /// tests control every publish point with explicit barriers.
    #[must_use]
    pub fn new(replicas: usize, servers: usize, base: GhbaConfig) -> Self {
        FleetSpec {
            replicas,
            servers,
            base,
            drain_cadence: Duration::from_secs(3600),
            wal_root: None,
            sync_policy: SyncPolicy::EveryBatch,
        }
    }

    /// Overrides the background drain cadence (builder style).
    #[must_use]
    pub fn with_drain_cadence(mut self, cadence: Duration) -> Self {
        self.drain_cadence = cadence;
        self
    }

    /// Makes every replica durable under `root` (builder style):
    /// replica `r` writes its checkpoint and WAL to `root/replica-r`,
    /// and [`LoopbackNet::restart_replica`] recovers from there.
    #[must_use]
    pub fn with_wal_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.wal_root = Some(root.into());
        self
    }

    /// Overrides the WAL sync policy (builder style).
    #[must_use]
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    fn replica_config(&self, r: usize, rendezvous_addr: String) -> ReplicaConfig {
        let mut config = ReplicaConfig::new(r as u16, self.servers, self.base.clone())
            .with_rendezvous(rendezvous_addr)
            .with_drain_cadence(self.drain_cadence)
            .with_sync_policy(self.sync_policy);
        if let Some(root) = &self.wal_root {
            config = config.with_wal_dir(root.join(format!("replica-{r}")));
        }
        config
    }
}

/// A running loopback fleet. Dropping it shuts everything down.
#[derive(Debug)]
pub struct LoopbackNet {
    spec: FleetSpec,
    rendezvous: Rendezvous,
    replicas: Vec<Option<ReplicaServer>>,
}

impl LoopbackNet {
    /// Launches the rendezvous and every replica (each registering
    /// itself), all on ephemeral loopback ports.
    ///
    /// # Errors
    ///
    /// Fails when any bind or registration fails.
    pub fn launch(spec: FleetSpec) -> std::io::Result<LoopbackNet> {
        assert!(spec.replicas > 0, "a fleet needs at least one replica");
        let rendezvous = Rendezvous::spawn("127.0.0.1:0")?;
        let rendezvous_addr = rendezvous.addr().to_string();
        let mut replicas = Vec::with_capacity(spec.replicas);
        for r in 0..spec.replicas {
            replicas.push(Some(ReplicaServer::spawn(
                spec.replica_config(r, rendezvous_addr.clone()),
            )?));
        }
        Ok(LoopbackNet {
            spec,
            rendezvous,
            replicas,
        })
    }

    /// The rendezvous address clients connect to.
    #[must_use]
    pub fn rendezvous_addr(&self) -> String {
        self.rendezvous.addr().to_string()
    }

    /// The fleet's shape.
    #[must_use]
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Connects a new client to the whole fleet.
    ///
    /// # Errors
    ///
    /// Propagates discovery or connection failures.
    pub fn client(&self) -> Result<NetClient, WireError> {
        NetClient::connect(
            &self.rendezvous_addr(),
            self.spec.replicas,
            Duration::from_secs(10),
        )
    }

    /// The in-process twin of this fleet: identical base config,
    /// replica count, server count, and seed derivation. Replaying the
    /// same batches through it must yield bit-identical outcomes.
    #[must_use]
    pub fn ground_truth(&self) -> Federation {
        Federation::new(&self.spec.base, self.spec.replicas, self.spec.servers)
    }

    /// Kills replica `index` as a crash would: the accept loop stops,
    /// the background reconciler is abandoned mid-cycle (no final
    /// drain), and un-drained writes are lost exactly as a process
    /// kill would lose them. The replica's WAL directory (when the
    /// fleet has one) survives for [`LoopbackNet::restart_replica`].
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range or already killed.
    pub fn kill_replica(&mut self, index: usize) {
        self.replicas[index]
            .take()
            .expect("replica already killed")
            .kill();
    }

    /// Restarts a killed replica: a fresh [`ReplicaServer`] spawns on
    /// a new ephemeral port with the same index and configuration,
    /// recovers from its WAL directory (when the fleet has one), and
    /// re-registers with the rendezvous — bumping the directory epoch
    /// so clients re-discover the new address.
    ///
    /// # Errors
    ///
    /// Propagates recovery, bind, or registration failures.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range or the replica is running.
    pub fn restart_replica(&mut self, index: usize) -> std::io::Result<()> {
        assert!(
            self.replicas[index].is_none(),
            "replica {index} is still running"
        );
        let config = self.spec.replica_config(index, self.rendezvous_addr());
        self.replicas[index] = Some(ReplicaServer::spawn(config)?);
        Ok(())
    }

    /// The rendezvous registration epoch replica `index` last acked.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range or the replica is killed.
    #[must_use]
    pub fn registration_epoch(&self, index: usize) -> u64 {
        self.replicas[index]
            .as_ref()
            .expect("replica is killed")
            .registration_epoch()
    }

    /// Shuts the whole fleet down, joining every thread.
    pub fn shutdown(self) {
        for replica in self.replicas.into_iter().flatten() {
            replica.shutdown();
        }
        self.rendezvous.shutdown();
    }
}
