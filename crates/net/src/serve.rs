//! Shared TCP server plumbing for the rendezvous and replica services:
//! bind, thread-per-connection accept loop, framed request/reply
//! dispatch, and prompt shutdown.
//!
//! # Connection lifecycle
//!
//! Each accepted connection gets its own worker thread running
//! [`conn_loop`]: read one framed [`NetMessage`], hand it to the
//! service's [`Service::handle`], write the reply (if any), repeat.
//! Clean end-of-stream ends the loop; a malformed frame gets one typed
//! [`NetMessage::ErrorReply`] before the connection closes — the
//! decoder's errors are data, never panics.
//!
//! # Shutdown without timeouts
//!
//! Blocking reads never carry read timeouts (a timeout firing
//! mid-frame would desynchronize the stream). Instead:
//!
//! * every accepted stream is tracked in a [`ConnRegistry`] of
//!   `try_clone`d handles; shutdown calls `shutdown(Both)` on each,
//!   which fails the worker's blocking read immediately;
//! * the accept loop is unblocked by a self-connection "poke" after
//!   the stop flag is raised.
//!
//! Both the explicit handle shutdown and a remote
//! [`NetMessage::Shutdown`] frame funnel through the same path, and
//! every thread is joined before [`ServerCore::shutdown`] returns.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::proto::NetMessage;
use crate::wire::WireError;

/// Error code carried by [`NetMessage::ErrorReply`] for malformed
/// requests.
pub const ERR_BAD_REQUEST: u16 = 400;
/// Error code for structurally valid messages the service does not
/// serve (e.g. `ExecuteBatch` sent to the rendezvous).
pub const ERR_UNSUPPORTED: u16 = 405;

/// What a service does with one decoded request.
pub(crate) enum ServiceReply {
    /// Write this reply, keep the connection open.
    Message(NetMessage),
    /// No reply (one-way messages like gossip); keep the connection.
    Silent,
    /// Stop the whole server. The connection closes without a reply.
    Shutdown,
}

/// One request/reply service dispatched by [`conn_loop`].
pub(crate) trait Service: Send + Sync + 'static {
    fn handle(&self, msg: NetMessage) -> ServiceReply;
}

/// Tracked clones of every live connection, so shutdown can fail their
/// blocking reads from outside.
#[derive(Default)]
pub(crate) struct ConnRegistry {
    streams: Mutex<Vec<TcpStream>>,
}

impl ConnRegistry {
    fn track(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            self.streams
                .lock()
                .expect("connection registry poisoned")
                .push(clone);
        }
    }

    fn shutdown_all(&self) {
        for stream in self
            .streams
            .lock()
            .expect("connection registry poisoned")
            .drain(..)
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A bound listener plus its accept loop and worker threads.
pub(crate) struct ServerCore {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<ConnRegistry>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("addr", &self.addr)
            .field("stopped", &self.stop.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl ServerCore {
    /// Binds `bind` (use port 0 for an ephemeral port) and starts the
    /// accept loop, dispatching every connection to `service`.
    pub(crate) fn spawn(
        bind: &str,
        name: &'static str,
        service: Arc<dyn Service>,
    ) -> std::io::Result<ServerCore> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnRegistry::default());
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::default();

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name(format!("{name}-accept"))
                .spawn(move || loop {
                    let stream = match listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(_) if stop.load(Ordering::Acquire) => break,
                        Err(_) => continue,
                    };
                    if stop.load(Ordering::Acquire) {
                        // The post-stop poke (or a late client): close
                        // and exit.
                        break;
                    }
                    conns.track(&stream);
                    let service = Arc::clone(&service);
                    let stop_flag = Arc::clone(&stop);
                    let poke_addr = addr;
                    if let Ok(worker) = std::thread::Builder::new()
                        .name(format!("{name}-conn"))
                        .spawn(move || conn_loop(stream, &*service, &stop_flag, poke_addr))
                    {
                        workers
                            .lock()
                            .expect("worker registry poisoned")
                            .push(worker);
                    }
                })?
        };

        Ok(ServerCore {
            addr,
            stop,
            conns,
            accept: Some(accept),
            workers,
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a stop has been requested (locally or by a remote
    /// [`NetMessage::Shutdown`] frame).
    pub(crate) fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Stops the accept loop, fails every in-flight read, and joins
    /// every thread. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.conns.shutdown_all();
        let workers: Vec<_> = self
            .workers
            .lock()
            .expect("worker registry poisoned")
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one connection until end-of-stream, error, or shutdown.
fn conn_loop(stream: TcpStream, service: &dyn Service, stop: &AtomicBool, poke_addr: SocketAddr) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match NetMessage::read_from(&mut reader) {
            Ok(Some(msg)) => match service.handle(msg) {
                ServiceReply::Message(reply) => {
                    if reply.write_to(&mut writer).is_err() {
                        break;
                    }
                }
                ServiceReply::Silent => {}
                ServiceReply::Shutdown => {
                    stop.store(true, Ordering::Release);
                    // Poke the accept loop awake so the server winds
                    // down without waiting for another client.
                    let _ = TcpStream::connect(poke_addr);
                    break;
                }
            },
            Ok(None) => break,
            Err(WireError::Io(_)) => break,
            Err(err) => {
                // Malformed frame: answer with a typed error, then
                // close (the stream position is unrecoverable).
                let _ = NetMessage::ErrorReply {
                    code: ERR_BAD_REQUEST,
                    detail: err.to_string(),
                }
                .write_to(&mut writer);
                break;
            }
        }
    }
}
