//! Trace-record → [`OpBatch`] translation for networked clients.
//!
//! Mirrors the facade replay driver's mapping exactly, so a networked
//! replay issues the same op stream an in-process replay would:
//!
//! * `Open`/`Close`/`Stat`/`Readdir` → one lookup;
//! * `Create` → one create;
//! * `Unlink` → a lookup **then** a remove (the unlinking client
//!   resolves the path first; a miss makes the remove a no-op);
//! * `Rename` → one rename, falling back to `{path}~renamed` when the
//!   record carries no destination.
//!
//! A [`RoundRobin`](EntryPolicy::RoundRobin) cursor advances across
//! batch boundaries (via [`EntryPolicy::advance`]), so cutting one
//! record stream into windows of any size resolves every op to the
//! same entry server a single giant batch would.

use ghba_core::{EntryPolicy, OpBatch};
use ghba_trace::{MetaOp, TraceRecord};

/// Cuts a record stream into [`OpBatch`] windows of at most `window`
/// ops (an `Unlink` may overflow a window by its paired remove).
///
/// # Examples
///
/// ```
/// use ghba_core::EntryPolicy;
/// use ghba_net::record_batches;
/// use ghba_trace::{WorkloadGenerator, WorkloadProfile};
///
/// let records = WorkloadGenerator::subtrace(WorkloadProfile::res(), 7, 0).take(1_000);
/// let batches: Vec<_> =
///     record_batches(records, 64, EntryPolicy::RoundRobin { start: 0 }).collect();
/// assert!(batches.iter().all(|b| b.len() >= 1 && b.len() <= 65));
/// assert!(batches.iter().map(|b| b.len()).sum::<usize>() >= 1_000);
/// ```
pub fn record_batches<I>(
    records: I,
    window: usize,
    policy: EntryPolicy,
) -> RecordBatches<I::IntoIter>
where
    I: IntoIterator<Item = TraceRecord>,
{
    assert!(window > 0, "batch window must be positive");
    RecordBatches {
        records: records.into_iter(),
        window,
        policy,
    }
}

/// Iterator returned by [`record_batches`].
#[derive(Debug, Clone)]
pub struct RecordBatches<I> {
    records: I,
    window: usize,
    policy: EntryPolicy,
}

impl<I: Iterator<Item = TraceRecord>> Iterator for RecordBatches<I> {
    type Item = OpBatch;

    fn next(&mut self) -> Option<OpBatch> {
        let mut batch = OpBatch::new();
        while batch.len() < self.window {
            let Some(record) = self.records.next() else {
                break;
            };
            match record.op {
                MetaOp::Open | MetaOp::Close | MetaOp::Stat | MetaOp::Readdir => {
                    batch.push_lookup(record.path);
                }
                MetaOp::Create => batch.push_create(record.path),
                MetaOp::Unlink => {
                    batch.push_lookup(record.path.clone());
                    batch.push_remove(record.path);
                }
                MetaOp::Rename => {
                    let to = record
                        .rename_to
                        .unwrap_or_else(|| format!("{}~renamed", record.path));
                    batch.push_rename(record.path, to);
                }
            }
        }
        if batch.is_empty() {
            return None;
        }
        let ops = batch.len();
        Some(batch.with_entry(self.policy.advance(ops)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghba_core::{MdsId, MetadataOp};
    use ghba_trace::{WorkloadGenerator, WorkloadProfile};

    #[test]
    fn round_robin_cursor_spans_batches() {
        let records: Vec<_> = WorkloadGenerator::subtrace(WorkloadProfile::ins(), 3, 0)
            .take(500)
            .collect();
        let windowed: Vec<OpBatch> =
            record_batches(records.clone(), 32, EntryPolicy::RoundRobin { start: 0 }).collect();
        let giant: Vec<OpBatch> =
            record_batches(records, usize::MAX, EntryPolicy::RoundRobin { start: 0 }).collect();
        assert_eq!(giant.len(), 1);
        // Flattened, every op resolves to the same entry server the
        // single giant batch would pick.
        let ids: Vec<MdsId> = (0..8).map(MdsId).collect();
        let mut flat_index = 0usize;
        for batch in &windowed {
            let policy = batch.entry_policy();
            for i in 0..batch.len() {
                assert_eq!(
                    policy.resolve_deterministic(&ids, i),
                    giant[0]
                        .entry_policy()
                        .resolve_deterministic(&ids, flat_index),
                );
                flat_index += 1;
            }
        }
        assert_eq!(flat_index, giant[0].len());
    }

    #[test]
    fn unlink_becomes_lookup_then_remove() {
        let record = TraceRecord {
            timestamp: ghba_simnet::SimTime::ZERO,
            op: MetaOp::Unlink,
            path: "/u/x".to_string(),
            rename_to: None,
            user: 0,
            host: 0,
            subtrace: 0,
        };
        let batches: Vec<_> = record_batches([record], 64, EntryPolicy::Random).collect();
        assert_eq!(batches.len(), 1);
        let ops = batches[0].ops();
        assert!(matches!(&ops[0], MetadataOp::Lookup(k) if k.path() == "/u/x"));
        assert!(matches!(&ops[1], MetadataOp::Remove(k) if k.path() == "/u/x"));
    }

    #[test]
    fn rename_without_destination_falls_back() {
        let record = TraceRecord {
            timestamp: ghba_simnet::SimTime::ZERO,
            op: MetaOp::Rename,
            path: "/r/x".to_string(),
            rename_to: None,
            user: 0,
            host: 0,
            subtrace: 0,
        };
        let batches: Vec<_> = record_batches([record], 64, EntryPolicy::Random).collect();
        let ops = batches[0].ops();
        assert!(matches!(&ops[0], MetadataOp::Rename { from, to }
                if from.path() == "/r/x" && to.path() == "/r/x~renamed"));
    }
}
