//! The versioned, typed message set carried by [`crate::wire`] frames.
//!
//! One [`NetMessage`] enum covers the whole deployment:
//!
//! * **Discovery** — replicas [`RegisterReplica`] with the rendezvous
//!   service and clients [`FetchMap`] the membership map plus its
//!   epoch ([`MapReply`]);
//! * **Serving** — clients ship [`ExecuteBatch`] frames carrying whole
//!   [`OpBatch`]es (every [`MetadataOp`] variant encodes explicitly,
//!   `Rename` included) and receive [`BatchReply`] frames carrying one
//!   [`OpOutcome`] per op, `Resolved` outcomes complete with level,
//!   latency, message count, and pinned epoch;
//! * **Gossip** — [`Gossip`] frames announce a membership view and its
//!   epoch to peers (ported from the in-process prototype's
//!   `ReplicaInstall`/epoch machinery in `ghba-cluster`);
//! * **Group probes** — [`GroupProbe`] multicasts a bare fingerprint
//!   (the hash-once admission fingerprint travels as its two lanes;
//!   the path bytes stay home) and [`ProbeReply`] returns the servers
//!   whose published filters claim it — the wire form of the
//!   `GroupProbe`/`ProbeReply` messages in `ghba-cluster::Message`;
//! * **Control** — [`Drain`] forces a replica's reconciliation +
//!   publish flush (a barrier for tests and orderly shutdown),
//!   [`Stats`] samples a replica's counters, [`Ping`]/[`Pong`] probe
//!   liveness, [`Shutdown`] stops a server remotely.
//!
//! `PathKey`s travel as pathname **plus** fingerprint lanes and are
//! re-verified on decode ([`PathKey::from_parts`]): a flipped bit in
//! either half is a [`WireError::CorruptFingerprint`], not a silently
//! mis-probing key.
//!
//! [`RegisterReplica`]: NetMessage::RegisterReplica
//! [`FetchMap`]: NetMessage::FetchMap
//! [`MapReply`]: NetMessage::MapReply
//! [`ExecuteBatch`]: NetMessage::ExecuteBatch
//! [`BatchReply`]: NetMessage::BatchReply
//! [`Gossip`]: NetMessage::Gossip
//! [`GroupProbe`]: NetMessage::GroupProbe
//! [`ProbeReply`]: NetMessage::ProbeReply
//! [`Drain`]: NetMessage::Drain
//! [`Stats`]: NetMessage::Stats
//! [`Ping`]: NetMessage::Ping
//! [`Pong`]: NetMessage::Pong
//! [`Shutdown`]: NetMessage::Shutdown

use std::io::{Read, Write};
use std::time::Duration;

use ghba_bloom::Fingerprint;
use ghba_core::{
    EntryPolicy, MdsId, MembershipEpoch, MetadataOp, OpBatch, OpOutcome, PathKey, QueryLevel,
    QueryOutcome,
};

use crate::wire::{ByteReader, ByteWriter, Frame, WireCodec, WireError};

/// Every message of wire version 1.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMessage {
    /// Replica → rendezvous: "I serve shard `replica` at `addr`".
    RegisterReplica {
        /// The replica's shard index in the fleet.
        replica: u16,
        /// Its `host:port` serving address.
        addr: String,
    },
    /// Rendezvous → replica: registration accepted; the membership
    /// epoch after the insert.
    RegisterAck {
        /// Epoch after this registration.
        epoch: u64,
    },
    /// Client → rendezvous: fetch the membership map.
    FetchMap,
    /// Rendezvous → client: the registered fleet and its epoch.
    MapReply {
        /// Current membership epoch (bumps on every registration).
        epoch: u64,
        /// `(shard index, host:port)` for every registered replica.
        replicas: Vec<(u16, String)>,
    },
    /// Client → replica: execute an [`OpBatch`] through the pin-once
    /// pipeline.
    ExecuteBatch {
        /// Client-chosen sequence number, echoed in the reply.
        seq: u64,
        /// The batch (policy + typed ops, fingerprints verified on
        /// decode).
        batch: OpBatch,
    },
    /// Replica → client: the batch's outcomes, one per op in order.
    BatchReply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Per-op outcomes.
        outcomes: Vec<OpOutcome>,
    },
    /// Peer → replica: a membership view and its epoch. A replica
    /// adopts the view iff the epoch is newer than what it holds.
    Gossip {
        /// The announced epoch.
        epoch: u64,
        /// The announced live server set.
        members: Vec<MdsId>,
    },
    /// Client → replica (multicast): "which of your servers' published
    /// filters claim this fingerprint?" The pathname never travels.
    GroupProbe {
        /// Correlation id echoed in the reply.
        qid: u64,
        /// The admission fingerprint, as its two lanes.
        fp: Fingerprint,
    },
    /// Replica → client: the probe's positive servers.
    ProbeReply {
        /// Echo of the probe's correlation id.
        qid: u64,
        /// The answering replica's shard index.
        replica: u16,
        /// Servers whose published filter claims the fingerprint
        /// (Bloom semantics: false positives possible, negatives
        /// authoritative).
        positives: Vec<MdsId>,
    },
    /// Client → replica: drain the concurrent shard logs and flush all
    /// pending filter publishes — the barrier every phase boundary of
    /// the end-to-end tests stands on.
    Drain,
    /// Replica → client: drain finished.
    DrainAck {
        /// Write records reconciled by this drain.
        drained: u64,
        /// Records still pending after it (always 0 today).
        pending: u64,
    },
    /// Client → replica: sample counters without perturbing anything.
    Stats,
    /// Replica → client: the sample.
    StatsReply {
        /// Write records currently awaiting reconciliation.
        pending: u64,
        /// Batches served since startup.
        batches_served: u64,
        /// Newest epoch adopted from [`NetMessage::Gossip`] (0 if
        /// none).
        gossip_epoch: u64,
    },
    /// Liveness probe.
    Ping {
        /// Echoed verbatim.
        nonce: u64,
    },
    /// Liveness answer.
    Pong {
        /// Echo of the probe's nonce.
        nonce: u64,
    },
    /// Stop the receiving server (rendezvous or replica) remotely.
    Shutdown,
    /// Any-direction: the peer rejected a request.
    ErrorReply {
        /// Machine-readable code (see server docs).
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
}

mod tags {
    pub const REGISTER_REPLICA: u8 = 1;
    pub const REGISTER_ACK: u8 = 2;
    pub const FETCH_MAP: u8 = 3;
    pub const MAP_REPLY: u8 = 4;
    pub const EXECUTE_BATCH: u8 = 5;
    pub const BATCH_REPLY: u8 = 6;
    pub const GOSSIP: u8 = 7;
    pub const GROUP_PROBE: u8 = 8;
    pub const PROBE_REPLY: u8 = 9;
    pub const DRAIN: u8 = 10;
    pub const DRAIN_ACK: u8 = 11;
    pub const STATS: u8 = 12;
    pub const STATS_REPLY: u8 = 13;
    pub const PING: u8 = 14;
    pub const PONG: u8 = 15;
    pub const SHUTDOWN: u8 = 16;
    pub const ERROR_REPLY: u8 = 17;
}

fn put_mds(w: &mut ByteWriter, id: MdsId) {
    w.u16(id.0);
}

fn get_mds(r: &mut ByteReader<'_>) -> Result<MdsId, WireError> {
    Ok(MdsId(r.u16()?))
}

fn put_mds_list(w: &mut ByteWriter, ids: &[MdsId]) {
    w.u32(ids.len() as u32);
    for &id in ids {
        put_mds(w, id);
    }
}

fn get_mds_list(r: &mut ByteReader<'_>) -> Result<Vec<MdsId>, WireError> {
    let n = r.u32()? as usize;
    let mut ids = Vec::with_capacity(n.min(4_096));
    for _ in 0..n {
        ids.push(get_mds(r)?);
    }
    Ok(ids)
}

fn put_fingerprint(w: &mut ByteWriter, fp: &Fingerprint) {
    let (a, b) = fp.lanes();
    w.u64(a);
    w.u64(b);
}

fn get_fingerprint(r: &mut ByteReader<'_>) -> Result<Fingerprint, WireError> {
    let a = r.u64()?;
    let b = r.u64()?;
    Ok(Fingerprint::from_lanes(a, b))
}

fn put_path_key(w: &mut ByteWriter, key: &PathKey) {
    w.string(key.path());
    put_fingerprint(w, key.fingerprint());
}

fn get_path_key(r: &mut ByteReader<'_>) -> Result<PathKey, WireError> {
    let path = r.string()?;
    let fp = get_fingerprint(r)?;
    PathKey::from_parts(path.clone(), fp).ok_or(WireError::CorruptFingerprint { path })
}

fn put_entry_policy(w: &mut ByteWriter, policy: EntryPolicy) {
    match policy {
        EntryPolicy::Random => w.u8(0),
        EntryPolicy::Pinned(id) => {
            w.u8(1);
            put_mds(w, id);
        }
        EntryPolicy::RoundRobin { start } => {
            w.u8(2);
            w.u64(start as u64);
        }
    }
}

fn get_entry_policy(r: &mut ByteReader<'_>) -> Result<EntryPolicy, WireError> {
    match r.u8()? {
        0 => Ok(EntryPolicy::Random),
        1 => Ok(EntryPolicy::Pinned(get_mds(r)?)),
        2 => Ok(EntryPolicy::RoundRobin {
            start: r.u64()? as usize,
        }),
        value => Err(WireError::UnknownEnum {
            what: "EntryPolicy",
            value,
        }),
    }
}

fn put_op(w: &mut ByteWriter, op: &MetadataOp) {
    match op {
        MetadataOp::Create(key) => {
            w.u8(0);
            put_path_key(w, key);
        }
        MetadataOp::Lookup(key) => {
            w.u8(1);
            put_path_key(w, key);
        }
        MetadataOp::Remove(key) => {
            w.u8(2);
            put_path_key(w, key);
        }
        MetadataOp::Rename { from, to } => {
            w.u8(3);
            put_path_key(w, from);
            put_path_key(w, to);
        }
    }
}

fn get_op(r: &mut ByteReader<'_>) -> Result<MetadataOp, WireError> {
    match r.u8()? {
        0 => Ok(MetadataOp::Create(get_path_key(r)?)),
        1 => Ok(MetadataOp::Lookup(get_path_key(r)?)),
        2 => Ok(MetadataOp::Remove(get_path_key(r)?)),
        3 => Ok(MetadataOp::Rename {
            from: get_path_key(r)?,
            to: get_path_key(r)?,
        }),
        value => Err(WireError::UnknownEnum {
            what: "MetadataOp",
            value,
        }),
    }
}

fn put_batch(w: &mut ByteWriter, batch: &OpBatch) {
    put_entry_policy(w, batch.entry_policy());
    w.u32(batch.len() as u32);
    for op in batch.ops() {
        put_op(w, op);
    }
}

fn get_batch(r: &mut ByteReader<'_>) -> Result<OpBatch, WireError> {
    let policy = get_entry_policy(r)?;
    let n = r.u32()? as usize;
    let mut batch = OpBatch::new().with_entry(policy);
    for _ in 0..n {
        batch.push(get_op(r)?);
    }
    Ok(batch)
}

fn put_level(w: &mut ByteWriter, level: QueryLevel) {
    w.u8(match level {
        QueryLevel::L1Lru => 0,
        QueryLevel::L2Segment => 1,
        QueryLevel::L3Group => 2,
        QueryLevel::L4Global => 3,
        QueryLevel::Nonexistent => 4,
    });
}

fn get_level(r: &mut ByteReader<'_>) -> Result<QueryLevel, WireError> {
    match r.u8()? {
        0 => Ok(QueryLevel::L1Lru),
        1 => Ok(QueryLevel::L2Segment),
        2 => Ok(QueryLevel::L3Group),
        3 => Ok(QueryLevel::L4Global),
        4 => Ok(QueryLevel::Nonexistent),
        value => Err(WireError::UnknownEnum {
            what: "QueryLevel",
            value,
        }),
    }
}

fn put_opt_mds(w: &mut ByteWriter, id: Option<MdsId>) {
    match id {
        None => w.u8(0),
        Some(id) => {
            w.u8(1);
            put_mds(w, id);
        }
    }
}

fn get_opt_mds(r: &mut ByteReader<'_>) -> Result<Option<MdsId>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_mds(r)?)),
        value => Err(WireError::UnknownEnum {
            what: "Option<MdsId>",
            value,
        }),
    }
}

fn put_query_outcome(w: &mut ByteWriter, q: &QueryOutcome) {
    put_opt_mds(w, q.home);
    put_level(w, q.level);
    // Nanosecond precision covers every simulated latency the models
    // emit (u64 nanoseconds spans ~584 years).
    w.u64(q.latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    w.u32(q.messages);
    put_mds(w, q.entry);
    w.u64(q.epoch.0);
}

fn get_query_outcome(r: &mut ByteReader<'_>) -> Result<QueryOutcome, WireError> {
    Ok(QueryOutcome {
        home: get_opt_mds(r)?,
        level: get_level(r)?,
        latency: Duration::from_nanos(r.u64()?),
        messages: r.u32()?,
        entry: get_mds(r)?,
        epoch: MembershipEpoch(r.u64()?),
    })
}

fn put_outcome(w: &mut ByteWriter, outcome: &OpOutcome) {
    match outcome {
        OpOutcome::Created { home } => {
            w.u8(0);
            put_mds(w, *home);
        }
        OpOutcome::Resolved(q) => {
            w.u8(1);
            put_query_outcome(w, q);
        }
        OpOutcome::Removed { home } => {
            w.u8(2);
            put_opt_mds(w, *home);
        }
        OpOutcome::Renamed { old_home, new_home } => {
            w.u8(3);
            put_opt_mds(w, *old_home);
            put_opt_mds(w, *new_home);
        }
    }
}

fn get_outcome(r: &mut ByteReader<'_>) -> Result<OpOutcome, WireError> {
    match r.u8()? {
        0 => Ok(OpOutcome::Created { home: get_mds(r)? }),
        1 => Ok(OpOutcome::Resolved(get_query_outcome(r)?)),
        2 => Ok(OpOutcome::Removed {
            home: get_opt_mds(r)?,
        }),
        3 => Ok(OpOutcome::Renamed {
            old_home: get_opt_mds(r)?,
            new_home: get_opt_mds(r)?,
        }),
        value => Err(WireError::UnknownEnum {
            what: "OpOutcome",
            value,
        }),
    }
}

impl NetMessage {
    /// Encodes the message payload: tag byte + body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            NetMessage::RegisterReplica { replica, addr } => {
                w.u8(tags::REGISTER_REPLICA);
                w.u16(*replica);
                w.string(addr);
            }
            NetMessage::RegisterAck { epoch } => {
                w.u8(tags::REGISTER_ACK);
                w.u64(*epoch);
            }
            NetMessage::FetchMap => w.u8(tags::FETCH_MAP),
            NetMessage::MapReply { epoch, replicas } => {
                w.u8(tags::MAP_REPLY);
                w.u64(*epoch);
                w.u32(replicas.len() as u32);
                for (index, addr) in replicas {
                    w.u16(*index);
                    w.string(addr);
                }
            }
            NetMessage::ExecuteBatch { seq, batch } => {
                w.u8(tags::EXECUTE_BATCH);
                w.u64(*seq);
                put_batch(&mut w, batch);
            }
            NetMessage::BatchReply { seq, outcomes } => {
                w.u8(tags::BATCH_REPLY);
                w.u64(*seq);
                w.u32(outcomes.len() as u32);
                for outcome in outcomes {
                    put_outcome(&mut w, outcome);
                }
            }
            NetMessage::Gossip { epoch, members } => {
                w.u8(tags::GOSSIP);
                w.u64(*epoch);
                put_mds_list(&mut w, members);
            }
            NetMessage::GroupProbe { qid, fp } => {
                w.u8(tags::GROUP_PROBE);
                w.u64(*qid);
                put_fingerprint(&mut w, fp);
            }
            NetMessage::ProbeReply {
                qid,
                replica,
                positives,
            } => {
                w.u8(tags::PROBE_REPLY);
                w.u64(*qid);
                w.u16(*replica);
                put_mds_list(&mut w, positives);
            }
            NetMessage::Drain => w.u8(tags::DRAIN),
            NetMessage::DrainAck { drained, pending } => {
                w.u8(tags::DRAIN_ACK);
                w.u64(*drained);
                w.u64(*pending);
            }
            NetMessage::Stats => w.u8(tags::STATS),
            NetMessage::StatsReply {
                pending,
                batches_served,
                gossip_epoch,
            } => {
                w.u8(tags::STATS_REPLY);
                w.u64(*pending);
                w.u64(*batches_served);
                w.u64(*gossip_epoch);
            }
            NetMessage::Ping { nonce } => {
                w.u8(tags::PING);
                w.u64(*nonce);
            }
            NetMessage::Pong { nonce } => {
                w.u8(tags::PONG);
                w.u64(*nonce);
            }
            NetMessage::Shutdown => w.u8(tags::SHUTDOWN),
            NetMessage::ErrorReply { code, detail } => {
                w.u8(tags::ERROR_REPLY);
                w.u16(*code);
                w.string(detail);
            }
        }
        w.into_bytes()
    }

    /// Decodes one message from a frame payload (tag byte + body),
    /// verifying the body is fully consumed. Never panics; every
    /// malformed shape maps to a typed [`WireError`].
    pub fn decode(payload: &[u8]) -> Result<NetMessage, WireError> {
        let mut r = ByteReader::new(payload);
        let tag = r.u8()?;
        let msg = match tag {
            tags::REGISTER_REPLICA => NetMessage::RegisterReplica {
                replica: r.u16()?,
                addr: r.string()?,
            },
            tags::REGISTER_ACK => NetMessage::RegisterAck { epoch: r.u64()? },
            tags::FETCH_MAP => NetMessage::FetchMap,
            tags::MAP_REPLY => {
                let epoch = r.u64()?;
                let n = r.u32()? as usize;
                let mut replicas = Vec::with_capacity(n.min(4_096));
                for _ in 0..n {
                    replicas.push((r.u16()?, r.string()?));
                }
                NetMessage::MapReply { epoch, replicas }
            }
            tags::EXECUTE_BATCH => NetMessage::ExecuteBatch {
                seq: r.u64()?,
                batch: get_batch(&mut r)?,
            },
            tags::BATCH_REPLY => {
                let seq = r.u64()?;
                let n = r.u32()? as usize;
                let mut outcomes = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    outcomes.push(get_outcome(&mut r)?);
                }
                NetMessage::BatchReply { seq, outcomes }
            }
            tags::GOSSIP => NetMessage::Gossip {
                epoch: r.u64()?,
                members: get_mds_list(&mut r)?,
            },
            tags::GROUP_PROBE => NetMessage::GroupProbe {
                qid: r.u64()?,
                fp: get_fingerprint(&mut r)?,
            },
            tags::PROBE_REPLY => NetMessage::ProbeReply {
                qid: r.u64()?,
                replica: r.u16()?,
                positives: get_mds_list(&mut r)?,
            },
            tags::DRAIN => NetMessage::Drain,
            tags::DRAIN_ACK => NetMessage::DrainAck {
                drained: r.u64()?,
                pending: r.u64()?,
            },
            tags::STATS => NetMessage::Stats,
            tags::STATS_REPLY => NetMessage::StatsReply {
                pending: r.u64()?,
                batches_served: r.u64()?,
                gossip_epoch: r.u64()?,
            },
            tags::PING => NetMessage::Ping { nonce: r.u64()? },
            tags::PONG => NetMessage::Pong { nonce: r.u64()? },
            tags::SHUTDOWN => NetMessage::Shutdown,
            tags::ERROR_REPLY => NetMessage::ErrorReply {
                code: r.u16()?,
                detail: r.string()?,
            },
            tag => return Err(WireError::UnknownTag { tag }),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Encodes into a complete wire [`Frame`] (length prefix + header +
    /// payload).
    #[must_use]
    pub fn to_frame(&self) -> Frame {
        Frame::from_payload(&self.encode())
    }

    /// Parses one framed message from the front of `bytes`, returning
    /// it and the bytes consumed.
    pub fn parse_frame(bytes: &[u8]) -> Result<(NetMessage, usize), WireError> {
        let (payload, consumed) = Frame::parse(bytes)?;
        Ok((NetMessage::decode(payload)?, consumed))
    }

    /// Writes the message as one frame and flushes.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), WireError> {
        WireCodec::write_payload(w, &self.encode())
    }

    /// Reads one framed message; `Ok(None)` on clean end-of-stream.
    pub fn read_from(r: &mut impl Read) -> Result<Option<NetMessage>, WireError> {
        match WireCodec::read_payload(r)? {
            None => Ok(None),
            Some(payload) => Ok(Some(NetMessage::decode(&payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &NetMessage) {
        let frame = msg.to_frame();
        let (decoded, consumed) = NetMessage::parse_frame(frame.bytes()).expect("well-formed");
        assert_eq!(&decoded, msg);
        assert_eq!(consumed, frame.bytes().len());
    }

    fn sample_batch() -> OpBatch {
        let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin { start: 3 });
        batch.push_lookup("/t0/d1/f7");
        batch.push_create("/t1/d0/f1");
        batch.push_remove("/t1/d0/f2");
        batch.push_rename("/t1/d0/f1", "/t1/d9/moved");
        batch
    }

    #[test]
    fn every_message_round_trips() {
        let q = QueryOutcome {
            home: Some(MdsId(4)),
            level: QueryLevel::L3Group,
            latency: Duration::from_nanos(123_456_789),
            messages: 9,
            entry: MdsId(2),
            epoch: MembershipEpoch(11),
        };
        for msg in [
            NetMessage::RegisterReplica {
                replica: 2,
                addr: "127.0.0.1:4711".into(),
            },
            NetMessage::RegisterAck { epoch: 3 },
            NetMessage::FetchMap,
            NetMessage::MapReply {
                epoch: 5,
                replicas: vec![(0, "127.0.0.1:1".into()), (1, "127.0.0.1:2".into())],
            },
            NetMessage::ExecuteBatch {
                seq: 42,
                batch: sample_batch(),
            },
            NetMessage::BatchReply {
                seq: 42,
                outcomes: vec![
                    OpOutcome::Created { home: MdsId(1) },
                    OpOutcome::Resolved(q.clone()),
                    OpOutcome::Removed { home: None },
                    OpOutcome::Renamed {
                        old_home: Some(MdsId(0)),
                        new_home: Some(MdsId(3)),
                    },
                ],
            },
            NetMessage::Gossip {
                epoch: 7,
                members: vec![MdsId(0), MdsId(1), MdsId(2)],
            },
            NetMessage::GroupProbe {
                qid: 99,
                fp: Fingerprint::of("/t0/d1/f7"),
            },
            NetMessage::ProbeReply {
                qid: 99,
                replica: 1,
                positives: vec![MdsId(5)],
            },
            NetMessage::Drain,
            NetMessage::DrainAck {
                drained: 12,
                pending: 0,
            },
            NetMessage::Stats,
            NetMessage::StatsReply {
                pending: 1,
                batches_served: 2,
                gossip_epoch: 3,
            },
            NetMessage::Ping { nonce: 8 },
            NetMessage::Pong { nonce: 8 },
            NetMessage::Shutdown,
            NetMessage::ErrorReply {
                code: 1,
                detail: "not a rendezvous".into(),
            },
        ] {
            round_trip(&msg);
        }
    }

    #[test]
    fn empty_batch_round_trips() {
        round_trip(&NetMessage::ExecuteBatch {
            seq: 0,
            batch: OpBatch::new(),
        });
        round_trip(&NetMessage::BatchReply {
            seq: 0,
            outcomes: Vec::new(),
        });
    }

    #[test]
    fn corrupt_fingerprint_is_rejected() {
        let msg = NetMessage::ExecuteBatch {
            seq: 1,
            batch: sample_batch(),
        };
        let mut payload = msg.encode();
        // Flip one bit inside the first PathKey's fingerprint lanes
        // (path string "/t0/d1/f7" is 9 bytes; its length prefix starts
        // after tag + seq + policy tag + u64 start + op count + op tag).
        let pos = payload.len() - 1;
        payload[pos] ^= 0x01;
        let err = NetMessage::decode(&payload).expect_err("must reject");
        assert!(
            matches!(err, WireError::CorruptFingerprint { .. }),
            "got {err}"
        );
    }

    #[test]
    fn unknown_tag_and_enum_are_typed() {
        assert!(matches!(
            NetMessage::decode(&[0xEE]),
            Err(WireError::UnknownTag { tag: 0xEE })
        ));
        // An ExecuteBatch whose policy discriminant is junk.
        let mut payload = vec![super::tags::EXECUTE_BATCH];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.push(9);
        assert!(matches!(
            NetMessage::decode(&payload),
            Err(WireError::UnknownEnum {
                what: "EntryPolicy",
                ..
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = NetMessage::Drain.encode();
        payload.push(0);
        assert!(matches!(
            NetMessage::decode(&payload),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }
}
