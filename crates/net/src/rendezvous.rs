//! The rendezvous service: the fleet's membership directory.
//!
//! Replicas register their serving address under their shard index
//! ([`NetMessage::RegisterReplica`]); each registration bumps the
//! membership epoch. Clients fetch the `(index, addr)` map plus its
//! epoch ([`NetMessage::FetchMap`]/[`NetMessage::MapReply`]) and poll
//! until the expected fleet size appears — the networked stand-in for
//! the in-process cluster's membership snapshot.
//!
//! The service is deliberately dumb: no health checking, no leases.
//! A re-registration of the same index overwrites the address (a
//! replica restarting on a new port) and still bumps the epoch, so
//! clients can detect the change.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use crate::proto::NetMessage;
use crate::serve::{ServerCore, Service, ServiceReply, ERR_UNSUPPORTED};

#[derive(Default)]
struct Directory {
    epoch: u64,
    replicas: BTreeMap<u16, String>,
}

struct RendezvousService {
    directory: Mutex<Directory>,
}

impl Service for RendezvousService {
    fn handle(&self, msg: NetMessage) -> ServiceReply {
        match msg {
            NetMessage::RegisterReplica { replica, addr } => {
                let mut dir = self.directory.lock().expect("directory poisoned");
                dir.replicas.insert(replica, addr);
                dir.epoch += 1;
                ServiceReply::Message(NetMessage::RegisterAck { epoch: dir.epoch })
            }
            NetMessage::FetchMap => {
                let dir = self.directory.lock().expect("directory poisoned");
                ServiceReply::Message(NetMessage::MapReply {
                    epoch: dir.epoch,
                    replicas: dir
                        .replicas
                        .iter()
                        .map(|(&index, addr)| (index, addr.clone()))
                        .collect(),
                })
            }
            NetMessage::Ping { nonce } => ServiceReply::Message(NetMessage::Pong { nonce }),
            NetMessage::Shutdown => ServiceReply::Shutdown,
            other => ServiceReply::Message(NetMessage::ErrorReply {
                code: ERR_UNSUPPORTED,
                detail: format!("rendezvous does not serve {other:?}"),
            }),
        }
    }
}

/// A running rendezvous server. Dropping it shuts the server down and
/// joins every thread.
#[derive(Debug)]
pub struct Rendezvous {
    core: ServerCore,
    service: Arc<RendezvousService>,
}

impl std::fmt::Debug for RendezvousService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RendezvousService").finish_non_exhaustive()
    }
}

impl Rendezvous {
    /// Binds `bind` (port 0 for ephemeral) and starts serving.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn spawn(bind: &str) -> std::io::Result<Rendezvous> {
        let service = Arc::new(RendezvousService {
            directory: Mutex::default(),
        });
        let core = ServerCore::spawn(
            bind,
            "rendezvous",
            Arc::<RendezvousService>::clone(&service),
        )?;
        Ok(Rendezvous { core, service })
    }

    /// The bound serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// Current `(epoch, registered replicas)` snapshot.
    #[must_use]
    pub fn snapshot(&self) -> (u64, Vec<(u16, String)>) {
        let dir = self.service.directory.lock().expect("directory poisoned");
        (
            dir.epoch,
            dir.replicas
                .iter()
                .map(|(&index, addr)| (index, addr.clone()))
                .collect(),
        )
    }

    /// `true` once a stop has been requested (locally or by a remote
    /// [`NetMessage::Shutdown`] frame) — the binaries poll this.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.core.is_stopped()
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(mut self) {
        self.core.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn roundtrip(addr: SocketAddr, msg: &NetMessage) -> NetMessage {
        let mut stream = TcpStream::connect(addr).expect("connect");
        msg.write_to(&mut stream).expect("send");
        let mut reader = std::io::BufReader::new(stream);
        NetMessage::read_from(&mut reader)
            .expect("well-formed reply")
            .expect("a reply")
    }

    #[test]
    fn register_then_fetch() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let ack = roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 1,
                addr: "127.0.0.1:9001".into(),
            },
        );
        assert_eq!(ack, NetMessage::RegisterAck { epoch: 1 });
        let ack = roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 0,
                addr: "127.0.0.1:9000".into(),
            },
        );
        assert_eq!(ack, NetMessage::RegisterAck { epoch: 2 });
        let map = roundtrip(server.addr(), &NetMessage::FetchMap);
        assert_eq!(
            map,
            NetMessage::MapReply {
                epoch: 2,
                replicas: vec![(0, "127.0.0.1:9000".into()), (1, "127.0.0.1:9001".into()),],
            }
        );
        server.shutdown();
    }

    #[test]
    fn reregistration_overwrites_and_bumps() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 0,
                addr: "127.0.0.1:1".into(),
            },
        );
        roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 0,
                addr: "127.0.0.1:2".into(),
            },
        );
        assert_eq!(server.snapshot(), (2, vec![(0, "127.0.0.1:2".into())]));
        server.shutdown();
    }

    #[test]
    fn unsupported_messages_get_typed_errors() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let reply = roundtrip(server.addr(), &NetMessage::Drain);
        assert!(
            matches!(reply, NetMessage::ErrorReply { code, .. } if code == ERR_UNSUPPORTED),
            "got {reply:?}"
        );
        server.shutdown();
    }

    #[test]
    fn remote_shutdown_stops_the_server() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        NetMessage::Shutdown.write_to(&mut stream).expect("send");
        // Joining all threads proves the accept loop saw the poke.
        server.shutdown();
    }
}
