//! The rendezvous service: the fleet's membership directory.
//!
//! Replicas register their serving address under their shard index
//! ([`NetMessage::RegisterReplica`]); each registration bumps the
//! membership epoch. Clients fetch the `(index, addr)` map plus its
//! epoch ([`NetMessage::FetchMap`]/[`NetMessage::MapReply`]) and poll
//! until the expected fleet size appears — the networked stand-in for
//! the in-process cluster's membership snapshot.
//!
//! The directory itself stays lease-free: a re-registration of the
//! same index overwrites the address (a replica restarting on a new
//! port) and still bumps the epoch, so clients can detect the change.
//! Liveness is an opt-in strand on top
//! ([`Rendezvous::spawn_with_liveness`]): a background sweep pings
//! every registered replica on a cadence, and an entry that misses
//! `strikes` consecutive sweeps is pruned from the directory (bumping
//! the epoch). Plain [`Rendezvous::spawn`] never pings, so directory
//! entries may be stale by construction — tests register fake
//! addresses and rely on that.

use std::collections::{BTreeMap, HashMap};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ghba_core::Reconciler;

use crate::proto::NetMessage;
use crate::serve::{ServerCore, Service, ServiceReply, ERR_UNSUPPORTED};

#[derive(Default)]
struct Directory {
    epoch: u64,
    replicas: BTreeMap<u16, String>,
}

struct RendezvousService {
    directory: Mutex<Directory>,
}

impl Service for RendezvousService {
    fn handle(&self, msg: NetMessage) -> ServiceReply {
        match msg {
            NetMessage::RegisterReplica { replica, addr } => {
                let mut dir = self.directory.lock().expect("directory poisoned");
                dir.replicas.insert(replica, addr);
                dir.epoch += 1;
                ServiceReply::Message(NetMessage::RegisterAck { epoch: dir.epoch })
            }
            NetMessage::FetchMap => {
                let dir = self.directory.lock().expect("directory poisoned");
                ServiceReply::Message(NetMessage::MapReply {
                    epoch: dir.epoch,
                    replicas: dir
                        .replicas
                        .iter()
                        .map(|(&index, addr)| (index, addr.clone()))
                        .collect(),
                })
            }
            NetMessage::Ping { nonce } => ServiceReply::Message(NetMessage::Pong { nonce }),
            NetMessage::Shutdown => ServiceReply::Shutdown,
            other => ServiceReply::Message(NetMessage::ErrorReply {
                code: ERR_UNSUPPORTED,
                detail: format!("rendezvous does not serve {other:?}"),
            }),
        }
    }
}

/// A running rendezvous server. Dropping it shuts the server down and
/// joins every thread.
#[derive(Debug)]
pub struct Rendezvous {
    core: ServerCore,
    service: Arc<RendezvousService>,
    liveness: Option<Reconciler>,
}

impl std::fmt::Debug for RendezvousService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RendezvousService").finish_non_exhaustive()
    }
}

impl Rendezvous {
    /// Binds `bind` (port 0 for ephemeral) and starts serving.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn spawn(bind: &str) -> std::io::Result<Rendezvous> {
        let service = Arc::new(RendezvousService {
            directory: Mutex::default(),
        });
        let core = ServerCore::spawn(
            bind,
            "rendezvous",
            Arc::<RendezvousService>::clone(&service),
        )?;
        Ok(Rendezvous {
            core,
            service,
            liveness: None,
        })
    }

    /// Like [`Rendezvous::spawn`], plus a background liveness sweep:
    /// every `cadence`, each registered replica is pinged on its
    /// serving address, and an entry that fails `strikes` consecutive
    /// sweeps is pruned from the directory (bumping the epoch so
    /// clients notice). A successful ping clears the entry's strikes,
    /// and a re-registration — same index, new address — starts from
    /// zero: strikes follow the `(index, addr)` pair, never the index
    /// alone, so a restarted replica can't inherit its predecessor's
    /// misses. A racing re-registration also wins over a prune: the
    /// sweep only removes the exact address it struck out.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn spawn_with_liveness(
        bind: &str,
        cadence: Duration,
        strikes: u32,
    ) -> std::io::Result<Rendezvous> {
        let strikes = strikes.max(1);
        let mut server = Rendezvous::spawn(bind)?;
        let service = Arc::clone(&server.service);
        let mut missed: HashMap<(u16, String), u32> = HashMap::new();
        let mut nonce = 0u64;
        server.liveness = Some(Reconciler::spawn(cadence, move || {
            let entries: Vec<(u16, String)> = {
                let dir = service.directory.lock().expect("directory poisoned");
                dir.replicas
                    .iter()
                    .map(|(&index, addr)| (index, addr.clone()))
                    .collect()
            };
            // Strikes for entries no longer in the directory are dead
            // weight (pruned or re-registered elsewhere): drop them.
            missed.retain(|key, _| entries.contains(key));
            let mut dead = Vec::new();
            for (index, addr) in entries {
                nonce += 1;
                if ping(&addr, nonce) {
                    missed.remove(&(index, addr));
                    continue;
                }
                let count = missed.entry((index, addr.clone())).or_insert(0);
                *count += 1;
                if *count >= strikes {
                    dead.push((index, addr));
                }
            }
            if dead.is_empty() {
                return;
            }
            let mut dir = service.directory.lock().expect("directory poisoned");
            let mut pruned = false;
            for (index, addr) in dead {
                if dir.replicas.get(&index) == Some(&addr) {
                    dir.replicas.remove(&index);
                    missed.remove(&(index, addr));
                    pruned = true;
                }
            }
            if pruned {
                dir.epoch += 1;
            }
        }));
        Ok(server)
    }

    /// The bound serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.core.addr()
    }

    /// Current `(epoch, registered replicas)` snapshot.
    #[must_use]
    pub fn snapshot(&self) -> (u64, Vec<(u16, String)>) {
        let dir = self.service.directory.lock().expect("directory poisoned");
        (
            dir.epoch,
            dir.replicas
                .iter()
                .map(|(&index, addr)| (index, addr.clone()))
                .collect(),
        )
    }

    /// `true` once a stop has been requested (locally or by a remote
    /// [`NetMessage::Shutdown`] frame) — the binaries poll this.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.core.is_stopped()
    }

    /// Stops the liveness sweep (if any) and the server, joining every
    /// thread.
    pub fn shutdown(mut self) {
        if let Some(liveness) = self.liveness.take() {
            liveness.shutdown();
        }
        self.core.shutdown();
    }
}

/// One liveness probe: connect, send [`NetMessage::Ping`], expect the
/// echoed [`NetMessage::Pong`] within a short read timeout. Any
/// failure — refused connection, timeout, wrong reply — is one strike.
fn ping(addr: &str, nonce: u64) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return false,
    };
    let ping = NetMessage::Ping { nonce };
    if ping.write_to(&mut writer).is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    matches!(
        NetMessage::read_from(&mut reader),
        Ok(Some(NetMessage::Pong { nonce: echoed })) if echoed == nonce
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    fn roundtrip(addr: SocketAddr, msg: &NetMessage) -> NetMessage {
        let mut stream = TcpStream::connect(addr).expect("connect");
        msg.write_to(&mut stream).expect("send");
        let mut reader = std::io::BufReader::new(stream);
        NetMessage::read_from(&mut reader)
            .expect("well-formed reply")
            .expect("a reply")
    }

    #[test]
    fn register_then_fetch() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let ack = roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 1,
                addr: "127.0.0.1:9001".into(),
            },
        );
        assert_eq!(ack, NetMessage::RegisterAck { epoch: 1 });
        let ack = roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 0,
                addr: "127.0.0.1:9000".into(),
            },
        );
        assert_eq!(ack, NetMessage::RegisterAck { epoch: 2 });
        let map = roundtrip(server.addr(), &NetMessage::FetchMap);
        assert_eq!(
            map,
            NetMessage::MapReply {
                epoch: 2,
                replicas: vec![(0, "127.0.0.1:9000".into()), (1, "127.0.0.1:9001".into()),],
            }
        );
        server.shutdown();
    }

    #[test]
    fn reregistration_overwrites_and_bumps() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 0,
                addr: "127.0.0.1:1".into(),
            },
        );
        roundtrip(
            server.addr(),
            &NetMessage::RegisterReplica {
                replica: 0,
                addr: "127.0.0.1:2".into(),
            },
        );
        assert_eq!(server.snapshot(), (2, vec![(0, "127.0.0.1:2".into())]));
        server.shutdown();
    }

    #[test]
    fn unsupported_messages_get_typed_errors() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let reply = roundtrip(server.addr(), &NetMessage::Drain);
        assert!(
            matches!(reply, NetMessage::ErrorReply { code, .. } if code == ERR_UNSUPPORTED),
            "got {reply:?}"
        );
        server.shutdown();
    }

    #[test]
    fn remote_shutdown_stops_the_server() {
        let server = Rendezvous::spawn("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        NetMessage::Shutdown.write_to(&mut stream).expect("send");
        // Joining all threads proves the accept loop saw the poke.
        server.shutdown();
    }
}
