//! Nibble-packed counting Bloom filters.
//!
//! The classic counting-filter configuration (Fan et al., Summary Cache)
//! uses 4-bit counters: analysis shows counters exceeding 15 are
//! vanishingly rare at sane load factors, so packing two counters per byte
//! halves the memory of [`CountingBloomFilter`](crate::CountingBloomFilter)
//! — attractive for the IDBFA, whose whole point is being tiny.

use std::hash::Hash;

use crate::error::{BloomError, FilterShape};
use crate::hash::probe_indices;

const MAX_COUNT: u8 = 0xF;

/// A counting Bloom filter with 4-bit saturating counters, two per byte.
///
/// Identical semantics to [`CountingBloomFilter`] — no false negatives,
/// deletion support, saturation safety — at half the memory, with
/// saturation reached at 15 instead of 255.
///
/// [`CountingBloomFilter`]: crate::CountingBloomFilter
///
/// # Examples
///
/// ```
/// use ghba_bloom::CompactCountingBloomFilter;
///
/// let mut f = CompactCountingBloomFilter::new(512, 4, 0);
/// f.insert("replica-of-mds-3");
/// assert!(f.contains("replica-of-mds-3"));
/// f.remove("replica-of-mds-3")?;
/// assert!(!f.contains("replica-of-mds-3"));
/// # Ok::<(), ghba_bloom::BloomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactCountingBloomFilter {
    nibbles: Vec<u8>,
    bits: usize,
    hashes: u32,
    seed: u64,
    items: usize,
}

impl CompactCountingBloomFilter {
    /// Creates an empty filter with `bits` 4-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    #[must_use]
    pub fn new(bits: usize, hashes: u32, seed: u64) -> Self {
        assert!(bits > 0, "filter must have at least one counter");
        assert!(hashes > 0, "filter must use at least one hash");
        CompactCountingBloomFilter {
            nibbles: vec![0; bits.div_ceil(2)],
            bits,
            hashes,
            seed,
            items: 0,
        }
    }

    /// The compatibility shape.
    #[must_use]
    pub fn shape(&self) -> FilterShape {
        FilterShape {
            bits: self.bits,
            hashes: self.hashes,
            seed: self.seed,
        }
    }

    /// Number of counters.
    #[must_use]
    pub fn counter_len(&self) -> usize {
        self.bits
    }

    /// Net items represented.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.items
    }

    /// `true` when nothing is represented.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Heap footprint: half a byte per counter.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.nibbles.len()
    }

    fn get(&self, idx: usize) -> u8 {
        let byte = self.nibbles[idx / 2];
        if idx.is_multiple_of(2) {
            byte & 0xF
        } else {
            byte >> 4
        }
    }

    fn set(&mut self, idx: usize, value: u8) {
        debug_assert!(value <= MAX_COUNT);
        let byte = &mut self.nibbles[idx / 2];
        if idx.is_multiple_of(2) {
            *byte = (*byte & 0xF0) | value;
        } else {
            *byte = (*byte & 0x0F) | (value << 4);
        }
    }

    /// Inserts `item`, incrementing its counters (saturating at 15).
    pub fn insert<T: Hash + ?Sized>(&mut self, item: &T) {
        for idx in probe_indices(item, self.seed, self.bits, self.hashes) {
            let current = self.get(idx);
            if current < MAX_COUNT {
                self.set(idx, current + 1);
            }
        }
        self.items += 1;
    }

    /// Probabilistic membership test: `false` means definitely absent.
    #[must_use]
    pub fn contains<T: Hash + ?Sized>(&self, item: &T) -> bool {
        probe_indices(item, self.seed, self.bits, self.hashes).all(|idx| self.get(idx) > 0)
    }

    /// Removes one occurrence of `item`; saturated counters stay put.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::AbsentItem`] — without modifying anything —
    /// if some counter for `item` is already zero.
    pub fn remove<T: Hash + ?Sized>(&mut self, item: &T) -> Result<(), BloomError> {
        if !self.contains(item) {
            return Err(BloomError::AbsentItem);
        }
        for idx in probe_indices(item, self.seed, self.bits, self.hashes) {
            let current = self.get(idx);
            if current != MAX_COUNT {
                self.set(idx, current - 1);
            }
        }
        self.items = self.items.saturating_sub(1);
        Ok(())
    }

    /// Resets to empty, keeping the shape.
    pub fn clear(&mut self) {
        self.nibbles.fill(0);
        self.items = 0;
    }

    /// Number of non-zero counters.
    #[must_use]
    pub fn ones(&self) -> usize {
        (0..self.bits).filter(|&i| self.get(i) > 0).count()
    }

    /// Largest counter value (diagnostics).
    #[must_use]
    pub fn max_counter(&self) -> u8 {
        (0..self.bits).map(|i| self.get(i)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingBloomFilter;

    #[test]
    fn insert_remove_roundtrip() {
        let mut f = CompactCountingBloomFilter::new(512, 4, 1);
        f.insert("a");
        f.insert("b");
        assert!(f.contains("a"));
        f.remove("a").unwrap();
        assert!(!f.contains("a"));
        assert!(f.contains("b"));
        assert_eq!(f.item_count(), 1);
    }

    #[test]
    fn remove_absent_is_error_and_nondestructive() {
        let mut f = CompactCountingBloomFilter::new(512, 4, 1);
        f.insert("present");
        let before = f.clone();
        assert_eq!(f.remove("never"), Err(BloomError::AbsentItem));
        assert_eq!(f, before);
    }

    #[test]
    fn half_the_memory_of_byte_counters() {
        let compact = CompactCountingBloomFilter::new(1_000, 4, 0);
        let full = CountingBloomFilter::new(1_000, 4, 0);
        assert_eq!(compact.memory_bytes() * 2, full.memory_bytes());
    }

    #[test]
    fn agrees_with_byte_counting_filter() {
        let mut compact = CompactCountingBloomFilter::new(4_096, 5, 9);
        let mut full = CountingBloomFilter::new(4_096, 5, 9);
        for i in 0..300u32 {
            compact.insert(&i);
            full.insert(&i);
        }
        for i in 0..600u32 {
            assert_eq!(compact.contains(&i), full.contains(&i), "item {i}");
        }
        assert_eq!(compact.ones(), full.ones());
    }

    #[test]
    fn saturation_never_causes_false_negative() {
        let mut f = CompactCountingBloomFilter::new(8, 2, 3);
        for i in 0..1_000u32 {
            f.insert(&i);
        }
        assert_eq!(f.max_counter(), 15);
        for i in 100..200u32 {
            let _ = f.remove(&i);
        }
        for i in 0..100u32 {
            assert!(f.contains(&i));
        }
    }

    #[test]
    fn nibble_packing_is_isolated() {
        // Adjacent counters must not bleed into each other.
        let mut f = CompactCountingBloomFilter::new(16, 1, 0);
        for i in 0..16 {
            f.set(i, (i % 16) as u8);
        }
        for i in 0..16 {
            assert_eq!(f.get(i), (i % 16) as u8, "counter {i}");
        }
    }

    #[test]
    fn double_insert_requires_double_remove() {
        let mut f = CompactCountingBloomFilter::new(512, 4, 1);
        f.insert("x");
        f.insert("x");
        f.remove("x").unwrap();
        assert!(f.contains("x"));
        f.remove("x").unwrap();
        assert!(!f.contains("x"));
    }

    #[test]
    fn clear_resets() {
        let mut f = CompactCountingBloomFilter::new(64, 2, 0);
        f.insert("x");
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.ones(), 0);
    }
}
