//! Bloom filter toolkit for G-HBA-style distributed metadata management.
//!
//! This crate provides every probabilistic structure the G-HBA paper (Hua,
//! Zhu, Jiang, Feng, Tian — *Scalable and Adaptive Metadata Management in
//! Ultra Large-scale File Systems*) builds on:
//!
//! * [`BloomFilter`] — the plain bit-vector filter each metadata server
//!   (MDS) maintains over its local files and replicates to peers;
//! * [`CountingBloomFilter`] — deletable filters, used by the ID Bloom
//!   filter array (IDBFA) that tracks replica placement within a group;
//! * [`BloomFilterArray`] — a keyed array of filters probed together,
//!   classifying results as zero / unique / multiple [`Hit`]s;
//! * [`SharedShapeArray`] — the bit-sliced hot-path variant for arrays
//!   whose filters share one [`FilterShape`]: an N-filter probe is `k`
//!   word-row loads plus an AND-reduction instead of N filter walks;
//! * [`Fingerprint`] ([`hash`]) — hash-once digests: one pass over the item
//!   bytes derives every filter's probe stream by O(1) seed-mixing;
//! * [`LruBloomArray`] and [`GenerationalLruArray`] — the L1 "hot data"
//!   structures capturing temporal locality;
//! * [`ops`] — filter set algebra (union / intersection / XOR) and the
//!   sparse [`FilterDelta`] used by the replica-update protocol;
//! * [`analysis`] — closed-form false-rate formulas, including the paper's
//!   Equation (1).
//!
//! # Quick start
//!
//! ```
//! use ghba_bloom::{BloomFilter, BloomFilterArray, Hit};
//!
//! // Each MDS summarizes its local files…
//! let mut mds0 = BloomFilter::for_items(10_000, 12.0);
//! let mut mds1 = mds0.clone();
//! mds0.insert("/projects/ghba/paper.tex");
//! mds1.insert("/home/alice/notes.txt");
//!
//! // …and peers assemble replicas into an array they can query.
//! let mut array = BloomFilterArray::new();
//! array.push(0u16, mds0)?;
//! array.push(1u16, mds1)?;
//! assert_eq!(array.query("/home/alice/notes.txt"), Hit::Unique(1));
//! # Ok::<(), ghba_bloom::BloomError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod array;
mod compact;
mod counting;
mod error;
mod filter;
pub mod hash;
mod lru;
pub mod ops;
mod shared;

pub use array::{BloomFilterArray, Hit};
pub use compact::CompactCountingBloomFilter;
pub use counting::CountingBloomFilter;
pub use error::{BloomError, FilterShape};
pub use filter::BloomFilter;
pub use hash::Fingerprint;
pub use lru::{GenerationalLruArray, LruBloomArray};
pub use ops::FilterDelta;
pub use shared::{ProbeBatch, SharedShapeArray, SlotMask};
