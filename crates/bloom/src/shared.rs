//! Bit-sliced, shared-shape Bloom filter arrays — the hot-path probe
//! structure behind every level of the G-HBA query hierarchy.
//!
//! # Layout
//!
//! A [`SharedShapeArray`] holds up to `C` filters (slots) that all share one
//! [`FilterShape`] `(m, k, seed)`. Instead of `C` independent bit vectors,
//! the bits are stored **interleaved by bit position**: for each of the `m`
//! bit positions there is a row of `ceil(C/64)` words (`stride`) holding
//! that position's bit for *every* slot. Membership bit `j` of slot `s`
//! lives at word `slab[j * stride + s / 64]`, bit `s % 64`.
//!
//! A query therefore needs the item's `k` probe rows only **once** for the
//! whole array: starting from the live-slot mask, it ANDs the `k` rows
//! together — `k × stride` word loads — and the surviving mask bits *are*
//! the positive slots. Compare the classic array-of-filters walk, which
//! costs `N` separate filter traversals (`N × k` scattered bit reads) plus
//! `N` hashes without the hash-once [`Fingerprint`] path.
//!
//! # Invariants
//!
//! * All slots share the array's `FilterShape`; filters pushed in must match
//!   it exactly ([`BloomError::IncompatibleFilters`] otherwise), so a slot's
//!   probe rows are the same for every slot and the AND-reduction is sound.
//! * Probe sequences come from [`Fingerprint`] seed-mixing and are *bit
//!   identical* to [`crate::hash::probe_indices`] / [`BloomFilter`] probes:
//!   a `SharedShapeArray` answers exactly like a [`BloomFilterArray`] built
//!   from the same inserts (the property tests assert this).
//! * Freed slots are zeroed immediately and masked out of every query, so
//!   recycling a slot can never leak a predecessor's bits.
//!
//! # Concurrency
//!
//! The probe seam is deliberately **read-shared**: every query entry
//! point ([`SharedShapeArray::query_fp`], [`query_fp_masked`],
//! [`query_batch`]) takes `&self`, and all per-pass working memory lives
//! in the caller-owned [`ProbeBatch`] scratch arena — the array itself
//! holds no interior mutability anywhere (plain `Vec`s and a `HashMap`;
//! the only atomics are the process-wide CPU-feature detection caches).
//! `SharedShapeArray<I>` is therefore `Sync` whenever `I` is, and N
//! threads may probe one slab concurrently so long as each brings its
//! own `ProbeBatch` — exactly how the parallel batch execution engine
//! upstream fans one fused lookup run out across workers against the
//! shared published slab. Compile-time assertions below pin the seam so
//! an accidental `Cell` can never silently revoke it.
//!
//! [`query_fp_masked`]: SharedShapeArray::query_fp_masked
//! [`query_batch`]: SharedShapeArray::query_batch
//!
//! # Examples
//!
//! ```
//! use ghba_bloom::{FilterShape, Fingerprint, Hit, SharedShapeArray};
//!
//! let shape = FilterShape { bits: 4096, hashes: 5, seed: 7 };
//! let mut array = SharedShapeArray::new(shape);
//! array.push(10u16)?;
//! array.push(11u16)?;
//! array.insert(10u16, "/projects/ghba/paper.tex")?;
//!
//! // Hash once, probe the whole array.
//! let fp = Fingerprint::of("/projects/ghba/paper.tex");
//! assert_eq!(array.query_fp(&fp), Hit::Unique(10));
//! assert_eq!(array.query("/somewhere/else"), Hit::None);
//! # Ok::<(), ghba_bloom::BloomError>(())
//! ```

use std::collections::HashMap;
use std::hash::Hash;

use crate::array::Hit;
use crate::error::{BloomError, FilterShape};
use crate::filter::BloomFilter;
use crate::hash::Fingerprint;
use crate::ops::FilterDelta;

/// A bit-sliced array of same-shape Bloom filters probed as one.
///
/// See the module-level docs in `shared.rs` for the layout and its
/// invariants. `I`
/// identifies the server a slot summarizes (an `MdsId` upstream).
#[derive(Debug, Clone)]
pub struct SharedShapeArray<I> {
    shape: FilterShape,
    /// Words per bit-position row (`ceil(slot capacity / 64)`).
    stride: usize,
    /// `shape.bits * stride` words, interleaved by bit position.
    slab: Vec<u64>,
    /// Slot index → id; `None` marks a free (zeroed) slot.
    slots: Vec<Option<I>>,
    /// Bitmask of live slots, `stride` words.
    live: Vec<u64>,
    /// Recycled slot indices.
    free: Vec<usize>,
    /// id → slot, so hot-path mask building and inserts avoid an O(C)
    /// scan over `slots`.
    index: HashMap<I, usize>,
    /// Per-slot inserted-item bookkeeping (upper bound, like
    /// [`BloomFilter::item_count`]).
    items: Vec<usize>,
}

/// A precomputed candidate-slot mask for masked queries.
///
/// Build one with [`SharedShapeArray::subset_mask`] or
/// [`SharedShapeArray::mask_all_except`]; masks stay valid until the array's
/// slot assignment changes (a push, remove, or capacity growth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMask {
    words: Vec<u64>,
}

impl SlotMask {
    /// Number of candidate slots in the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no slot is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// A batch of fingerprints (each with an optional candidate [`SlotMask`])
/// resolved by [`SharedShapeArray::query_batch`] in **one pipelined slab
/// pass**.
///
/// Metadata servers see many concurrent lookups at once (queued client
/// requests, a drained multicast mailbox); probing them one at a time pays
/// `k × stride` cold row loads per fingerprint, serialized as far as the
/// out-of-order window reaches. A batch derives every fingerprint's probe
/// rows up front (shared-modulus fastmod, no division), walks them with
/// the next fingerprints' rows software-prefetched ahead, and reduces each
/// row through SIMD kernels with the candidate mask held in registers —
/// so the cache misses of *different* lookups overlap instead of queueing
/// behind one another.
///
/// Build once, [`clear`](ProbeBatch::clear), and reuse: the batch also
/// carries the pass's scratch buffers (candidate masks, probe cursors,
/// row lists), so a reused batch allocates only the result vector.
///
/// # Within-batch dedup
///
/// Flash-crowd (Zipf-head) bursts queue the *same* fingerprint many times
/// in one batch. [`SharedShapeArray::query_batch`] dedups before the slab
/// pass: the `k × stride` row-AND runs **once per unique fingerprint**,
/// whatever candidate masks the duplicates carry. Equal-mask duplicates
/// share the representative's [`Hit`] outright; duplicates under
/// *different* masks (the same hot path entering through different
/// servers) share one unmasked reduction, with each duplicate's mask
/// applied to the surviving words at classification — a `stride`-word
/// AND instead of a full row walk. An all-distinct batch takes a cheap
/// sorted-scan fast path (no mask comparisons, scratch-backed, no
/// per-call allocation).
#[derive(Debug, Clone, Default)]
pub struct ProbeBatch {
    fps: Vec<Fingerprint>,
    masks: Vec<Option<SlotMask>>,
    scratch: BatchScratch,
}

/// Reusable working memory for one batched slab pass (lives inside
/// [`ProbeBatch`]; every field is fully re-initialized per query).
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    /// `B × stride` candidate-mask words.
    mask_words: Vec<u64>,
    /// Per-fingerprint probe cursors (`h1` advanced in place, `h2` fixed).
    h1: Vec<u64>,
    h2: Vec<u64>,
    /// Probe rows, `B × k`, fingerprint-major.
    rows: Vec<u32>,
    /// Per-fingerprint packed `(positives << 32) | slot` verdicts computed
    /// in-kernel while the mask is register-resident (`u64::MAX` = defer
    /// to the full [`SharedShapeArray::classify`] scan).
    verdicts: Vec<u64>,
    /// Query indices sorted by fingerprint lanes (dedup detection).
    order: Vec<u32>,
    /// `rep[i]` = earliest query with `i`'s fingerprint.
    rep: Vec<u32>,
    /// Representative queries in push order (the set the pass runs on).
    sel: Vec<u32>,
    /// Original index → position in `sel` (valid for representatives).
    pos: Vec<u32>,
    /// `mixed[r]` (valid for representatives): `r`'s duplicates carry
    /// *differing* candidate masks, so the row-AND ran unmasked (live
    /// slots) and each duplicate's mask applies at classification.
    mixed: Vec<bool>,
    /// Per-duplicate classification scratch (`survivors ∧ mask`).
    fanout: Vec<u64>,
    /// Mixed-group classification memo: `(representative, query)` pairs
    /// naming the first query classified under each distinct mask, so
    /// later duplicates repeating that mask reuse its verdict.
    classified: Vec<(u32, u32)>,
}

// The concurrent probe seam, enforced at compile time: a read-only slab
// shared across worker threads (`Sync`), with each worker's scratch
// arena free to move to its thread (`Send`). See the module-level
// "Concurrency" section.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_sync::<SharedShapeArray<u16>>();
    assert_sync::<SlotMask>();
    assert_send::<SharedShapeArray<u16>>();
    assert_send::<ProbeBatch>();
};

impl ProbeBatch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        ProbeBatch::default()
    }

    /// Creates an empty batch pre-sized for `capacity` fingerprints.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ProbeBatch {
            fps: Vec::with_capacity(capacity),
            masks: Vec::with_capacity(capacity),
            scratch: BatchScratch::default(),
        }
    }

    /// Queues `fp` against every live slot; returns its index in the
    /// batch's result vector.
    pub fn push(&mut self, fp: Fingerprint) -> usize {
        self.fps.push(fp);
        self.masks.push(None);
        self.fps.len() - 1
    }

    /// Queues `fp` restricted to the candidate slots of `mask` (the batch
    /// equivalent of [`SharedShapeArray::query_fp_masked`]); returns its
    /// index in the batch's result vector.
    pub fn push_masked(&mut self, fp: Fingerprint, mask: SlotMask) -> usize {
        self.fps.push(fp);
        self.masks.push(Some(mask));
        self.fps.len() - 1
    }

    /// Number of queued fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// The queued fingerprints, in push order.
    #[must_use]
    pub fn fingerprints(&self) -> &[Fingerprint] {
        &self.fps
    }

    /// Empties the batch, keeping its allocations for reuse.
    pub fn clear(&mut self) {
        self.fps.clear();
        self.masks.clear();
    }

    /// Derives every queued fingerprint's `k` probe rows for the filter
    /// family `shape` into `out` (cleared first), fingerprint-major — the
    /// batch analogue of [`Fingerprint::probe_rows_into`], sharing one
    /// `FastMod` magic across the whole batch instead of one hardware
    /// division per probe.
    ///
    /// This is how *non-slab* filters join a batched pass: an L4 global
    /// sweep probes every server's live counting filter with the same
    /// fingerprints the slab levels used, so the caller derives the row
    /// table once here and hands each filter its precomputed rows
    /// (`CountingBloomFilter::contains_rows`). Row `j` of fingerprint `q`
    /// lands at `out[q * k + j]`, identical to
    /// [`Fingerprint::probes`](Fingerprint::probes) for the same shape.
    ///
    /// # Panics
    ///
    /// Panics if `shape.bits` is zero or does not fit in a `u32`.
    pub fn derive_rows_into(&self, shape: crate::FilterShape, out: &mut Vec<u32>) {
        assert!(shape.bits > 0, "filter must have at least one bit");
        assert!(
            u32::try_from(shape.bits).is_ok(),
            "filter wider than u32 rows"
        );
        out.clear();
        out.reserve(self.fps.len() * shape.hashes as usize);
        let fm = FastMod::new(shape.bits as u64);
        for fp in &self.fps {
            let (mut cursor, step) = fp.pair(shape.seed);
            for _ in 0..shape.hashes {
                out.push(fm.rem(cursor) as u32);
                cursor = cursor.wrapping_add(step);
            }
        }
    }
}

/// ANDs `src` into `dst` and returns the OR of the resulting words (zero
/// means every candidate died and the query can stop early).
///
/// AVX2 variant, selected at compile time with
/// `-C target-feature=+avx2`: four 64-bit lanes per op via explicit
/// intrinsics.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
#[inline(always)]
fn and_reduce_into(dst: &mut [u64], src: &[u64]) -> u64 {
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_setzero_si256,
        _mm256_storeu_si256,
    };
    let n = dst.len().min(src.len());
    // SAFETY: `loadu`/`storeu` tolerate unaligned pointers and every access
    // is bounded by `n`, the shorter of the two slices.
    unsafe {
        let mut any = _mm256_setzero_si256();
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast::<__m256i>());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast::<__m256i>());
            let m = _mm256_and_si256(d, s);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast::<__m256i>(), m);
            any = _mm256_or_si256(any, m);
            i += 4;
        }
        let mut tail = 0u64;
        while i < n {
            dst[i] &= src[i];
            tail |= dst[i];
            i += 1;
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), any);
        lanes[0] | lanes[1] | lanes[2] | lanes[3] | tail
    }
}

/// ANDs `src` into `dst` and returns the OR of the resulting words (zero
/// means every candidate died and the query can stop early).
///
/// Portable variant: explicit 4-wide `u64` chunks with independent
/// accumulator lanes, a shape LLVM autovectorizes to 256-bit ops when the
/// target allows it.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
#[inline(always)]
fn and_reduce_into(dst: &mut [u64], src: &[u64]) -> u64 {
    let mut any4 = [0u64; 4];
    let mut dst_chunks = dst.chunks_exact_mut(4);
    let mut src_chunks = src.chunks_exact(4);
    for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
        for lane in 0..4 {
            d[lane] &= s[lane];
            any4[lane] |= d[lane];
        }
    }
    let mut any = any4[0] | any4[1] | any4[2] | any4[3];
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d &= s;
        any |= *d;
    }
    any
}

/// `true` once the running CPU is known to support AVX2 (checked once,
/// cached). Compile with `-C target-feature=+avx2` to skip the check
/// entirely.
#[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
fn avx2_detected() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
        state => state == 2,
    }
}

/// `true` once the running CPU is known to support AVX-512F (checked
/// once, cached): 8 × u64 per AND, halving the vector ops of the wide
/// batch kernel relative to AVX2.
#[cfg(all(target_arch = "x86_64", not(target_feature = "avx512f")))]
fn avx512_detected() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let yes = std::arch::is_x86_feature_detected!("avx512f");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
        state => state == 2,
    }
}

/// `true` once the running CPU is known to support AVX512VPOPCNTDQ on
/// top of AVX-512F (checked once, cached): the batch kernel's
/// classify — a popcount over every mask word — then runs as 8 × u64
/// `vpopcntq` folded into the last AND row instead of a scalar
/// `popcnt` chain after it.
#[cfg(all(target_arch = "x86_64", not(target_feature = "avx512vpopcntdq")))]
fn avx512vpopcnt_detected() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0);
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let yes = std::arch::is_x86_feature_detected!("avx512vpopcntdq")
                && std::arch::is_x86_feature_detected!("avx512f");
            STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
        state => state == 2,
    }
}

/// Precomputed magic for Lemire's exact 64-bit **fastmod**: `n % d` as
/// three widening multiplies instead of a hardware division.
///
/// Every probe index of a batch reduces by the *same* modulus (the filter
/// width `m`), so the magic is computed once per [`query_batch`] call and
/// the `B × k` index derivations stay off the (long-latency, poorly
/// pipelined) divider. Exact for every `n` and `d > 0` — see Lemire,
/// Kaser & Kurz, "Faster remainder by direct computation" (2019); the
/// unit test pins it against `%` and the property tests pin the batch
/// path against the division-based sequential probes.
///
/// [`query_batch`]: SharedShapeArray::query_batch
#[derive(Debug, Clone, Copy)]
struct FastMod {
    /// `2^128 / d + 1`.
    magic: u128,
    d: u64,
}

impl FastMod {
    #[inline]
    fn new(d: u64) -> Self {
        debug_assert!(d > 0, "modulus must be non-zero");
        // For d == 1 the magic wraps to 0, and rem() correctly returns 0.
        FastMod {
            magic: (u128::MAX / u128::from(d)).wrapping_add(1),
            d,
        }
    }

    /// `n % d`.
    #[inline(always)]
    fn rem(&self, n: u64) -> u64 {
        let lowbits = self.magic.wrapping_mul(u128::from(n));
        // High 64 bits of the 192-bit product `lowbits * d`.
        let d = u128::from(self.d);
        let bottom = (u128::from(lowbits as u64) * d) >> 64;
        let top = (lowbits >> 64) * d;
        ((bottom + top) >> 64) as u64
    }
}

/// Asks the kernel to back `words` with transparent huge pages
/// (`MADV_HUGEPAGE`), and to do so *before* the buffer is first touched so
/// page faults map 2 MiB pages synchronously.
///
/// A production-size slab (tens of MiB) probed at `k` random rows per
/// query blows the 4 KiB-page dTLB on almost every row load, and the
/// page-walk hardware — two walkers, deep hierarchies — becomes the probe
/// path's real serialization point. Huge pages shrink the slab to a
/// handful of TLB entries. Purely advisory: failure (non-Linux, THP
/// disabled) is ignored and everything still works on 4 KiB pages.
fn advise_hugepages(words: &[u64]) {
    #[cfg(target_os = "linux")]
    {
        const MADV_HUGEPAGE: i32 = 14;
        const PAGE: usize = 4096;
        mod libc_shim {
            extern "C" {
                pub fn madvise(addr: *mut core::ffi::c_void, length: usize, advice: i32) -> i32;
            }
        }
        let start = words.as_ptr() as usize;
        let end = start + words.len() * 8;
        let lo = start.next_multiple_of(PAGE);
        let hi = end & !(PAGE - 1);
        if hi > lo {
            // SAFETY: purely advisory syscall over a page-aligned range
            // inside this live allocation; the kernel never moves or
            // invalidates the memory.
            unsafe {
                libc_shim::madvise(lo as *mut core::ffi::c_void, hi - lo, MADV_HUGEPAGE);
            }
        }
    }
    #[cfg(not(target_os = "linux"))]
    let _ = words;
}

/// Prefetch target level: `NEAR` pulls into L1 (next rows to reduce),
/// `FAR` into L2 (rows a whole fingerprint ahead), keeping L1 fill
/// buffers free for demand loads.
#[derive(Clone, Copy)]
enum PrefetchHint {
    Near,
    Far,
}

/// Hints the prefetcher at one slab word.
#[inline(always)]
fn prefetch_word(slab: &[u64], word_offset: usize, hint: PrefetchHint) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure hint (no dereference), and callers pass
    // offsets inside the slab.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0, _MM_HINT_T1};
        let ptr = slab.as_ptr().add(word_offset).cast::<i8>();
        match hint {
            PrefetchHint::Near => _mm_prefetch(ptr, _MM_HINT_T0),
            PrefetchHint::Far => _mm_prefetch(ptr, _MM_HINT_T1),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (slab, word_offset, hint);
}

/// Hints the prefetcher at a whole probe row (both cache lines when the
/// row spans more than one).
#[inline(always)]
fn prefetch_row(slab: &[u64], stride: usize, row: usize, hint: PrefetchHint) {
    prefetch_word(slab, row * stride, hint);
    if stride > 8 {
        prefetch_word(slab, row * stride + 8, hint);
    }
}

/// The wide-row (stride > 1) batch reduction, with overlap tricks a lone
/// [`SharedShapeArray::query_fp`] walk cannot apply:
///
/// * **Shared-modulus fastmod derivation** — all `B × k` probe rows (the
///   same `(h1 + j·h2) mod m` stream as [`crate::hash::ProbeIndices`])
///   are derived up front with one precomputed [`FastMod`] magic: three
///   pipelined multiplies each, no hardware division anywhere.
/// * **Cross-fingerprint prefetch** — while fingerprint `q` is reduced,
///   every probe row of fingerprint `q+1` is software-prefetched, so the
///   next walk's line fetches resolve under the current walk's ANDs.
/// * **Register-resident masks** — with the stride a compile-time `S`,
///   each fingerprint's candidate mask is copied into a fixed-size local,
///   ANDed across all `k` rows without touching memory, and stored back
///   once; the reduction is bounds-check-free and fully unrolled.
///
/// A fingerprint whose mask zeroes stops early (bit-identical to the
/// sequential early exit). `S == 0` selects the dynamic-stride fallback
/// (`stride` is then read from the argument).
///
/// Marked `#[inline(always)]` so the AVX2-enabled wrapper compiles its own
/// fully vectorized copy of the whole pass (not just the innermost
/// reduction).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn batch_pass_body<const S: usize>(
    slab: &[u64],
    stride: usize,
    fm: FastMod,
    k: usize,
    h1: &[u64],
    h2: &[u64],
    rows: &mut Vec<u32>,
    masks: &mut [u64],
    verdicts: &mut [u64],
) {
    let stride = if S == 0 { stride } else { S };
    let b = h1.len();
    rows.clear();
    rows.reserve(b * k);
    for q in 0..b {
        let mut cursor = h1[q];
        let step = h2[q];
        for _ in 0..k {
            rows.push(fm.rem(cursor) as u32);
            cursor = cursor.wrapping_add(step);
        }
    }
    // Two fingerprints of prefetch depth: at DRAM-resident slab sizes a
    // single fingerprint's reduction (~hundreds of ns) barely covers one
    // memory round trip, so keep two walks' worth of lines in flight —
    // the next walk's rows in L1, the one after in L2 (far prefetches
    // stay out of the L1 fill buffers demand loads need).
    for &row in &rows[..k.min(b * k)] {
        prefetch_row(slab, stride, row as usize, PrefetchHint::Near);
    }
    if b > 1 {
        for &row in &rows[k..(2 * k).min(b * k)] {
            prefetch_row(slab, stride, row as usize, PrefetchHint::Far);
        }
    }
    for q in 0..b {
        if q + 1 < b {
            // Promote the next fingerprint's rows to L1...
            for &row in &rows[(q + 1) * k..(q + 2) * k] {
                prefetch_row(slab, stride, row as usize, PrefetchHint::Near);
            }
        }
        if q + 2 < b {
            // ...and stage the one after into L2.
            for &row in &rows[(q + 2) * k..(q + 3) * k] {
                prefetch_row(slab, stride, row as usize, PrefetchHint::Far);
            }
        }
        if S == 0 {
            let mask = &mut masks[q * stride..(q + 1) * stride];
            for &row in &rows[q * k..(q + 1) * k] {
                let base = row as usize * stride;
                if and_reduce_into(mask, &slab[base..base + stride]) == 0 {
                    break;
                }
            }
            verdicts[q] = u64::MAX;
        } else {
            // Fixed-size views: the mask lives in registers across all k
            // rows, and the backend sees exact lengths (no bounds checks,
            // full unroll).
            let mask_slot: &mut [u64; S] = (&mut masks[q * S..(q + 1) * S])
                .try_into()
                .expect("mask is S words");
            // No early-exit test: at wide strides the surviving candidate
            // set rarely zeroes before the last rows (N × fill^j decays
            // from hundreds), so the per-row OR-reduce + branch costs more
            // than the loads it could skip — and ANDing into an all-zero
            // mask is a semantic no-op either way.
            let mut mask = *mask_slot;
            for &row in &rows[q * k..(q + 1) * k] {
                if S == 1 && mask[0] == 0 {
                    // Single-word masks die fast on absent items; wider
                    // masks rarely zero before the tail (see above), so
                    // only S == 1 keeps the early exit.
                    break;
                }
                let base = row as usize * S;
                let row: &[u64; S] = slab[base..base + S].try_into().expect("row is S words");
                for (m, r) in mask.iter_mut().zip(row) {
                    *m &= r;
                }
            }
            // Classify while the mask is still in registers: popcount and
            // locate the (single, for a unique hit) surviving word without
            // re-reading the stored mask.
            let mut positives = 0u32;
            let mut hit_word = 0usize;
            for (w, &word) in mask.iter().enumerate() {
                positives += word.count_ones();
                if word != 0 {
                    hit_word = w;
                }
            }
            let slot = hit_word * 64 + mask[hit_word].trailing_zeros().min(63) as usize;
            verdicts[q] = (u64::from(positives) << 32) | slot as u64;
            *mask_slot = mask;
        }
    }
}

/// The wide-stride batch reduction with the classify **folded into the
/// last AND row**: instead of ANDing all `k` rows and then walking the
/// finished mask a second time for the popcount/hit-word scan (as
/// [`batch_pass_body`] does), the last row's AND, the population count,
/// and the surviving-word tracking run in one fused loop while the mask
/// words sit in registers.
///
/// On its own the fusion is a wash — the second walk touches registers,
/// not memory. It exists for the AVX512VPOPCNTDQ clones below: with
/// `vpopcntq` available the fused loop vectorizes end to end (AND +
/// popcount + nonzero test per 8-word vector), where the split form
/// forces the popcount chain back to scalar `popcnt` over extracted
/// words. Only instantiated at strides ≥ 8 (S ∈ {8, 16, 32}): narrower
/// masks classify faster scalar, and the S == 1 early exit matters
/// there.
///
/// Bit-identical to [`batch_pass_body`] (same masks, same packed
/// verdicts; property-tested below) — wide strides take no early exit
/// in either body, so peeling the last row changes no observable state.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn batch_pass_classify_body<const S: usize>(
    slab: &[u64],
    fm: FastMod,
    k: usize,
    h1: &[u64],
    h2: &[u64],
    rows: &mut Vec<u32>,
    masks: &mut [u64],
    verdicts: &mut [u64],
) {
    debug_assert!(k >= 1, "a filter probes at least one row");
    let b = h1.len();
    rows.clear();
    rows.reserve(b * k);
    for q in 0..b {
        let mut cursor = h1[q];
        let step = h2[q];
        for _ in 0..k {
            rows.push(fm.rem(cursor) as u32);
            cursor = cursor.wrapping_add(step);
        }
    }
    // Same two-fingerprint prefetch depth as `batch_pass_body`.
    for &row in &rows[..k.min(b * k)] {
        prefetch_row(slab, S, row as usize, PrefetchHint::Near);
    }
    if b > 1 {
        for &row in &rows[k..(2 * k).min(b * k)] {
            prefetch_row(slab, S, row as usize, PrefetchHint::Far);
        }
    }
    for q in 0..b {
        if q + 1 < b {
            for &row in &rows[(q + 1) * k..(q + 2) * k] {
                prefetch_row(slab, S, row as usize, PrefetchHint::Near);
            }
        }
        if q + 2 < b {
            for &row in &rows[(q + 2) * k..(q + 3) * k] {
                prefetch_row(slab, S, row as usize, PrefetchHint::Far);
            }
        }
        let mask_slot: &mut [u64; S] = (&mut masks[q * S..(q + 1) * S])
            .try_into()
            .expect("mask is S words");
        let mut mask = *mask_slot;
        let qrows = &rows[q * k..(q + 1) * k];
        // All but the last row: the plain register-resident AND chain.
        for &row in &qrows[..k - 1] {
            let base = row as usize * S;
            let row: &[u64; S] = slab[base..base + S].try_into().expect("row is S words");
            for (m, r) in mask.iter_mut().zip(row) {
                *m &= r;
            }
        }
        // The last row: AND fused with the popcount classify.
        let base = qrows[k - 1] as usize * S;
        let row: &[u64; S] = slab[base..base + S].try_into().expect("row is S words");
        let mut positives = 0u32;
        let mut hit_word = 0usize;
        for (w, (m, r)) in mask.iter_mut().zip(row).enumerate() {
            *m &= r;
            positives += m.count_ones();
            if *m != 0 {
                hit_word = w;
            }
        }
        let slot = hit_word * 64 + mask[hit_word].trailing_zeros().min(63) as usize;
        verdicts[q] = (u64::from(positives) << 32) | slot as u64;
        *mask_slot = mask;
    }
}

macro_rules! batch_pass_variants {
    ($($name:ident => $s:literal),+ $(,)?) => {
        $(
            /// AVX2 clone of [`batch_pass_body`] at this stride,
            /// dispatched at runtime when the build baseline lacks AVX2
            /// but the CPU has it.
            #[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = "avx2")]
            unsafe fn $name(
                slab: &[u64],
                stride: usize,
                fm: FastMod,
                k: usize,
                h1: &[u64],
                h2: &[u64],
                rows: &mut Vec<u32>,
                masks: &mut [u64],
                verdicts: &mut [u64],
            ) {
                batch_pass_body::<$s>(slab, stride, fm, k, h1, h2, rows, masks, verdicts);
            }
        )+
    };
}

batch_pass_variants! {
    batch_pass_avx2_dyn => 0,
    batch_pass_avx2_1 => 1,
    batch_pass_avx2_2 => 2,
    batch_pass_avx2_4 => 4,
    batch_pass_avx2_8 => 8,
    batch_pass_avx2_16 => 16,
    batch_pass_avx2_32 => 32,
}

macro_rules! batch_pass_variants_512 {
    ($($name:ident => $s:literal),+ $(,)?) => {
        $(
            /// AVX-512F clone of [`batch_pass_body`] at this stride,
            /// dispatched at runtime when the CPU supports 512-bit
            /// vectors (8 × u64 per AND).
            #[cfg(all(target_arch = "x86_64", not(target_feature = "avx512f")))]
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = "avx512f")]
            unsafe fn $name(
                slab: &[u64],
                stride: usize,
                fm: FastMod,
                k: usize,
                h1: &[u64],
                h2: &[u64],
                rows: &mut Vec<u32>,
                masks: &mut [u64],
                verdicts: &mut [u64],
            ) {
                batch_pass_body::<$s>(slab, stride, fm, k, h1, h2, rows, masks, verdicts);
            }
        )+
    };
}

batch_pass_variants_512! {
    batch_pass_avx512_dyn => 0,
    batch_pass_avx512_8 => 8,
    batch_pass_avx512_16 => 16,
    batch_pass_avx512_32 => 32,
}

macro_rules! batch_pass_variants_vpopcnt {
    ($($name:ident => $s:literal),+ $(,)?) => {
        $(
            /// AVX512VPOPCNTDQ clone of [`batch_pass_classify_body`] at
            /// this stride, dispatched at runtime when the CPU has
            /// vector popcount: the classify's per-word `count_ones`
            /// lowers to `vpopcntq` inside the fused last-AND loop.
            #[cfg(all(target_arch = "x86_64", not(target_feature = "avx512vpopcntdq")))]
            #[allow(clippy::too_many_arguments)]
            #[target_feature(enable = "avx512f", enable = "avx512vpopcntdq")]
            unsafe fn $name(
                slab: &[u64],
                fm: FastMod,
                k: usize,
                h1: &[u64],
                h2: &[u64],
                rows: &mut Vec<u32>,
                masks: &mut [u64],
                verdicts: &mut [u64],
            ) {
                batch_pass_classify_body::<$s>(slab, fm, k, h1, h2, rows, masks, verdicts);
            }
        )+
    };
}

batch_pass_variants_vpopcnt! {
    batch_pass_vpopcnt_8 => 8,
    batch_pass_vpopcnt_16 => 16,
    batch_pass_vpopcnt_32 => 32,
}

/// Runs the batch reduction with the widest vector width available (the
/// compile-time AVX2 path when the build targets it, a runtime-dispatched
/// AVX2 clone when only the CPU does) and a stride-specialized kernel for
/// the common power-of-two strides. CPUs with AVX512VPOPCNTDQ take the
/// fused-classify kernel ([`batch_pass_classify_body`]) at strides ≥ 8,
/// where the popcount classify vectorizes inside the last AND row.
#[allow(clippy::too_many_arguments)]
fn run_batch_pass(
    slab: &[u64],
    stride: usize,
    fm: FastMod,
    k: usize,
    h1: &[u64],
    h2: &[u64],
    rows: &mut Vec<u32>,
    masks: &mut [u64],
    verdicts: &mut [u64],
) {
    #[cfg(all(target_arch = "x86_64", not(target_feature = "avx512vpopcntdq")))]
    if k >= 1 && matches!(stride, 8 | 16 | 32) && avx512vpopcnt_detected() {
        // SAFETY: `avx512vpopcnt_detected` confirmed both instruction
        // sets (AVX-512F for the wide ANDs, VPOPCNTDQ for the fused
        // classify).
        unsafe {
            match stride {
                8 => batch_pass_vpopcnt_8(slab, fm, k, h1, h2, rows, masks, verdicts),
                16 => batch_pass_vpopcnt_16(slab, fm, k, h1, h2, rows, masks, verdicts),
                _ => batch_pass_vpopcnt_32(slab, fm, k, h1, h2, rows, masks, verdicts),
            }
        }
        return;
    }
    #[cfg(all(target_arch = "x86_64", not(target_feature = "avx512f")))]
    if stride >= 8 && avx512_detected() {
        // SAFETY: `avx512_detected` confirmed the instruction set.
        unsafe {
            match stride {
                8 => batch_pass_avx512_8(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                16 => batch_pass_avx512_16(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                32 => batch_pass_avx512_32(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                _ => batch_pass_avx512_dyn(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
            }
        }
        return;
    }
    #[cfg(all(target_arch = "x86_64", not(target_feature = "avx2")))]
    if avx2_detected() {
        // SAFETY: `avx2_detected` confirmed the instruction set.
        unsafe {
            match stride {
                1 => batch_pass_avx2_1(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                2 => batch_pass_avx2_2(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                4 => batch_pass_avx2_4(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                8 => batch_pass_avx2_8(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                16 => batch_pass_avx2_16(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                32 => batch_pass_avx2_32(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
                _ => batch_pass_avx2_dyn(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
            }
        }
        return;
    }
    match stride {
        1 => batch_pass_body::<1>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
        2 => batch_pass_body::<2>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
        4 => batch_pass_body::<4>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
        8 => batch_pass_body::<8>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
        16 => batch_pass_body::<16>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
        32 => batch_pass_body::<32>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
        _ => batch_pass_body::<0>(slab, stride, fm, k, h1, h2, rows, masks, verdicts),
    }
}

/// Transposes a 64×64 bit matrix in place: bit `c` of `m[r]` moves to bit
/// `r` of `m[c]` (LSB-first on both axes).
///
/// The classic recursive block swap (Hacker's Delight §7-3, adapted to the
/// LSB-first convention this crate uses): at granularity `j` the upper-left
/// and lower-right sub-blocks stay put while the off-diagonal sub-blocks
/// swap, in `O(64 · log 64)` word operations — the engine behind
/// [`SharedShapeArray::from_filters`]'s bulk load.
fn transpose_64x64(m: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            // Swap M[k][c + j] (high sub-columns of the upper row) with
            // M[k + j][c] (low sub-columns of the lower row) for every
            // low sub-column c selected by `mask`.
            let t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

impl<I: Copy + Eq + Hash> SharedShapeArray<I> {
    /// Creates an empty array whose slots will all use `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `shape.bits == 0` or `shape.hashes == 0`.
    #[must_use]
    pub fn new(shape: FilterShape) -> Self {
        Self::with_capacity(shape, 64)
    }

    /// Creates an empty array pre-sized for `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `shape.bits == 0` or `shape.hashes == 0`.
    #[must_use]
    pub fn with_capacity(shape: FilterShape, capacity: usize) -> Self {
        assert!(shape.bits > 0, "filters must have at least one bit");
        assert!(shape.hashes > 0, "filters must use at least one hash");
        let stride = capacity.max(1).div_ceil(64);
        let slab = vec![0; shape.bits * stride];
        advise_hugepages(&slab);
        SharedShapeArray {
            shape,
            stride,
            slab,
            slots: Vec::new(),
            live: vec![0; stride],
            free: Vec::new(),
            index: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Builds an array from same-shape `(id, filter)` pairs.
    ///
    /// Bulk loads (restart recovery, mass replica installs) go through a
    /// **64×64 block bit-matrix transpose** instead of the slot-at-a-time
    /// bit scatter of [`push_filter`](SharedShapeArray::push_filter): each
    /// block of up to 64 filters contributes one source word per 64
    /// bit-rows, the 64×64 block is transposed in registers
    /// (`O(64 log 64)` word ops), and whole slab words are written at
    /// once — ~64× fewer memory touches than scattering each set bit
    /// individually. The result is bit-identical to pushing the filters
    /// one by one (property-tested).
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] on a shape mismatch and
    /// [`BloomError::DuplicateId`] on a repeated id.
    pub fn from_filters<T>(iter: T) -> Result<Self, BloomError>
    where
        T: IntoIterator<Item = (I, BloomFilter)>,
    {
        let filters: Vec<(I, BloomFilter)> = iter.into_iter().collect();
        let Some((_, first)) = filters.first() else {
            // No filters means no shape to adopt; an arbitrary non-empty
            // shape keeps the array usable (every query answers `None`).
            return Ok(Self::new(FilterShape {
                bits: 64,
                hashes: 1,
                seed: 0,
            }));
        };
        let shape = first.shape();
        let mut array = Self::with_capacity(shape, filters.len());
        for (id, filter) in &filters {
            array.check_shape(filter)?;
            let slot = array.allocate_slot(*id)?;
            debug_assert_eq!(slot + 1, array.slots.len(), "fresh slots are dense");
            array.items[slot] = filter.item_count();
        }
        // Slots were allocated densely (0, 1, 2, …), so the filters of
        // block `w` occupy exactly slab-word column `w`: transpose each
        // 64-filter × 64-bit-row block straight into its column words.
        let words_per_filter = shape.bits.div_ceil(64);
        let stride = array.stride;
        for (column, chunk) in filters.chunks(64).enumerate() {
            for w in 0..words_per_filter {
                let mut block = [0u64; 64];
                let mut nonzero = 0u64;
                for (j, (_, filter)) in chunk.iter().enumerate() {
                    let word = filter.words()[w];
                    block[j] = word;
                    nonzero |= word;
                }
                if nonzero == 0 {
                    continue;
                }
                transpose_64x64(&mut block);
                let base_row = w * 64;
                let top = 64.min(shape.bits - base_row);
                for (bit, &word) in block.iter().enumerate().take(top) {
                    if word != 0 {
                        // Fresh zeroed slab: plain assignment suffices.
                        array.slab[(base_row + bit) * stride + column] = word;
                    }
                }
            }
        }
        Ok(array)
    }

    /// The shape shared by every slot.
    #[must_use]
    pub fn shape(&self) -> FilterShape {
        self.shape
    }

    /// Number of live slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` when no slot is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap footprint of the bit slab in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.slab.len() * 8
    }

    /// Live ids in slot order (insertion order when nothing was removed).
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        self.slots.iter().filter_map(|slot| *slot)
    }

    /// `true` if a slot for `id` is live.
    #[must_use]
    pub fn contains_id(&self, id: I) -> bool {
        self.slot_of(id).is_some()
    }

    fn slot_of(&self, id: I) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Doubles slot capacity, re-interleaving the slab.
    fn grow(&mut self) {
        let new_stride = self.stride * 2;
        let mut slab = vec![0u64; self.shape.bits * new_stride];
        advise_hugepages(&slab);
        for row in 0..self.shape.bits {
            let old = &self.slab[row * self.stride..(row + 1) * self.stride];
            slab[row * new_stride..row * new_stride + self.stride].copy_from_slice(old);
        }
        self.slab = slab;
        self.live.resize(new_stride, 0);
        self.stride = new_stride;
    }

    fn allocate_slot(&mut self, id: I) -> Result<usize, BloomError> {
        if self.contains_id(id) {
            return Err(BloomError::DuplicateId);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(id);
                slot
            }
            None => {
                if self.slots.len() == self.stride * 64 {
                    self.grow();
                }
                self.slots.push(Some(id));
                self.items.push(0);
                self.slots.len() - 1
            }
        };
        self.items[slot] = 0;
        self.live[slot / 64] |= 1 << (slot % 64);
        self.index.insert(id, slot);
        Ok(slot)
    }

    /// Adds an empty filter slot for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::DuplicateId`] if `id` is already present.
    pub fn push(&mut self, id: I) -> Result<(), BloomError> {
        self.allocate_slot(id).map(|_| ())
    }

    /// Adds a slot for `id` holding a copy of `filter`'s bits.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] if `filter` does not
    /// match the array shape, or [`BloomError::DuplicateId`].
    pub fn push_filter(&mut self, id: I, filter: &BloomFilter) -> Result<(), BloomError> {
        self.check_shape(filter)?;
        let slot = self.allocate_slot(id)?;
        self.write_column(slot, filter);
        self.items[slot] = filter.item_count();
        Ok(())
    }

    /// Replaces the bits of `id`'s slot with `filter`'s.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] on a shape mismatch or
    /// [`BloomError::UnknownId`] if `id` is absent.
    pub fn replace_filter(&mut self, id: I, filter: &BloomFilter) -> Result<(), BloomError> {
        self.check_shape(filter)?;
        let slot = self.slot_of(id).ok_or(BloomError::UnknownId)?;
        self.clear_column(slot);
        self.write_column(slot, filter);
        self.items[slot] = filter.item_count();
        Ok(())
    }

    /// Removes `id`'s slot (zeroing its column); returns `false` when `id`
    /// was not present.
    pub fn remove(&mut self, id: I) -> bool {
        let Some(slot) = self.slot_of(id) else {
            return false;
        };
        self.clear_column(slot);
        self.slots[slot] = None;
        self.items[slot] = 0;
        self.live[slot / 64] &= !(1 << (slot % 64));
        self.free.push(slot);
        self.index.remove(&id);
        true
    }

    fn check_shape(&self, filter: &BloomFilter) -> Result<(), BloomError> {
        if filter.shape() == self.shape {
            Ok(())
        } else {
            Err(BloomError::IncompatibleFilters {
                left: self.shape,
                right: filter.shape(),
            })
        }
    }

    /// Transposes `filter`'s set bits into `slot`'s column.
    fn write_column(&mut self, slot: usize, filter: &BloomFilter) {
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        for (w, &src) in filter.words().iter().enumerate() {
            let mut remaining = src;
            while remaining != 0 {
                let row = w * 64 + remaining.trailing_zeros() as usize;
                self.slab[row * self.stride + word] |= bit;
                remaining &= remaining - 1;
            }
        }
    }

    fn clear_column(&mut self, slot: usize) {
        let (word, bit) = (slot / 64, !(1u64 << (slot % 64)));
        for row in 0..self.shape.bits {
            self.slab[row * self.stride + word] &= bit;
        }
    }

    /// Applies a sparse [`FilterDelta`] directly to `id`'s column: only the
    /// bit-rows of the delta's changed words are touched — `O(64 × changed
    /// words)` — instead of the three full-column passes an
    /// extract/apply/replace round trip would cost.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] on a shape mismatch,
    /// [`BloomError::UnknownId`] if `id` is absent, or
    /// [`BloomError::Corrupt`] if the delta indexes past the filter.
    pub fn apply_delta(&mut self, id: I, delta: &FilterDelta) -> Result<(), BloomError> {
        if delta.shape() != self.shape {
            return Err(BloomError::IncompatibleFilters {
                left: self.shape,
                right: delta.shape(),
            });
        }
        let slot = self.slot_of(id).ok_or(BloomError::UnknownId)?;
        let word_count = self.shape.bits.div_ceil(64);
        if delta
            .changed_words()
            .iter()
            .any(|&(idx, _)| idx as usize >= word_count)
        {
            return Err(BloomError::Corrupt("delta word index out of range"));
        }
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        for &(idx, new_word) in delta.changed_words() {
            let base = idx as usize * 64;
            let top = (base + 64).min(self.shape.bits);
            for row in base..top {
                let cell = &mut self.slab[row * self.stride + word];
                if new_word >> (row - base) & 1 == 1 {
                    *cell |= bit;
                } else {
                    *cell &= !bit;
                }
            }
        }
        self.items[slot] = delta.new_items();
        Ok(())
    }

    /// Reconstructs `id`'s slot as a standalone [`BloomFilter`] (used when
    /// shipping a replica or applying a [`crate::FilterDelta`]).
    #[must_use]
    pub fn extract(&self, id: I) -> Option<BloomFilter> {
        let slot = self.slot_of(id)?;
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        let mut filter = BloomFilter::new(self.shape.bits, self.shape.hashes, self.shape.seed);
        for row in 0..self.shape.bits {
            if self.slab[row * self.stride + word] & bit != 0 {
                filter.words_mut()[row / 64] |= 1 << (row % 64);
            }
        }
        filter.set_items(self.items[slot]);
        Some(filter)
    }

    /// Sets `item`'s bits in `id`'s slot.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::UnknownId`] if `id` is absent.
    pub fn insert<T: Hash + ?Sized>(&mut self, id: I, item: &T) -> Result<(), BloomError> {
        self.insert_fp(id, &Fingerprint::of(item))
    }

    /// Hash-once variant of [`insert`](SharedShapeArray::insert).
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::UnknownId`] if `id` is absent.
    pub fn insert_fp(&mut self, id: I, fp: &Fingerprint) -> Result<(), BloomError> {
        let slot = self.slot_of(id).ok_or(BloomError::UnknownId)?;
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        for row in fp.probes(self.shape.seed, self.shape.bits, self.shape.hashes) {
            self.slab[row * self.stride + word] |= bit;
        }
        self.items[slot] += 1;
        Ok(())
    }

    /// A mask selecting the live slots of the given ids (unknown ids are
    /// ignored).
    pub fn subset_mask<T: IntoIterator<Item = I>>(&self, ids: T) -> SlotMask {
        let mut words = vec![0u64; self.stride];
        for id in ids {
            if let Some(slot) = self.slot_of(id) {
                words[slot / 64] |= 1 << (slot % 64);
            }
        }
        SlotMask { words }
    }

    /// A mask selecting every live slot except `id`'s.
    #[must_use]
    pub fn mask_all_except(&self, id: I) -> SlotMask {
        let mut words = self.live.clone();
        if let Some(slot) = self.slot_of(id) {
            words[slot / 64] &= !(1 << (slot % 64));
        }
        SlotMask { words }
    }

    /// Probes every live slot with `item` and classifies the positives.
    #[must_use]
    pub fn query<T: Hash + ?Sized>(&self, item: &T) -> Hit<I> {
        self.query_fp(&Fingerprint::of(item))
    }

    /// Hash-once probe of every live slot: `k × stride` word loads plus an
    /// AND-reduction, regardless of how many filters the array holds.
    #[must_use]
    pub fn query_fp(&self, fp: &Fingerprint) -> Hit<I> {
        self.reduce(fp, &self.live)
    }

    /// Masked hash-once probe: only slots in `mask` are candidates.
    /// # Panics
    ///
    /// Panics if `mask` predates a capacity growth of this array (a stale
    /// mask would silently exclude every slot beyond the old capacity).
    #[must_use]
    pub fn query_fp_masked(&self, fp: &Fingerprint, mask: &SlotMask) -> Hit<I> {
        assert_eq!(
            mask.words.len(),
            self.stride,
            "SlotMask predates a capacity growth; rebuild it"
        );
        self.reduce(fp, &mask.words)
    }

    /// Convenience: probe only the slots of `ids` (builds a transient mask).
    pub fn query_fp_among<T: IntoIterator<Item = I>>(&self, fp: &Fingerprint, ids: T) -> Hit<I> {
        let mask = self.subset_mask(ids);
        self.query_fp_masked(fp, &mask)
    }

    /// Resolves a whole [`ProbeBatch`] in one pipelined slab pass,
    /// returning one [`Hit`] per queued fingerprint, in push order.
    ///
    /// Answers are **bit-identical** to calling [`query_fp`] /
    /// [`query_fp_masked`] once per fingerprint (the property tests assert
    /// it); only the work schedule differs, in ways a lone query cannot
    /// match:
    ///
    /// * **Step-major interleaving** — probe step `j` runs for *every*
    ///   fingerprint before step `j+1`: the B row loads of one step are
    ///   independent, so their cache/TLB misses overlap B-wide, where a
    ///   single query's serial walk overlaps only as far as the
    ///   out-of-order window reaches. The next step's rows are derived and
    ///   software-prefetched while the current step's AND-reductions run.
    /// * **SIMD reduction** — rows are ANDed through the 4-wide chunked
    ///   path: AVX2 at compile time under `-C target-feature=+avx2`, or a
    ///   runtime-dispatched AVX2 clone of the whole pass when only the CPU
    ///   supports it, with stride-specialized (bounds-check-free, fully
    ///   unrolled) kernels for the common power-of-two strides.
    /// * **Shared-modulus fastmod** — all `B × k` probe-index reductions
    ///   use one precomputed `FastMod` magic instead of hardware
    ///   division, keeping the divider off the critical path.
    /// * **Amortized scratch** — masks, cursors, and liveness live in the
    ///   batch and are reused across calls; a reused batch allocates only
    ///   the result vector.
    ///
    /// [`query_fp`]: SharedShapeArray::query_fp
    /// [`query_fp_masked`]: SharedShapeArray::query_fp_masked
    ///
    /// # Panics
    ///
    /// Panics if a queued [`SlotMask`] predates a capacity growth of this
    /// array (same rule as
    /// [`query_fp_masked`](SharedShapeArray::query_fp_masked)).
    #[must_use]
    pub fn query_batch(&self, batch: &mut ProbeBatch) -> Vec<Hit<I>> {
        let b = batch.len();
        if b == 0 {
            return Vec::new();
        }
        let stride = self.stride;
        let k = self.shape.hashes as usize;
        let ProbeBatch {
            fps,
            masks: query_masks,
            scratch,
        } = batch;
        let BatchScratch {
            mask_words,
            h1,
            h2,
            rows,
            verdicts,
            order,
            rep,
            sel,
            pos,
            mixed,
            fanout,
            classified,
        } = scratch;
        // ---- Within-batch duplicate dedup (flash crowds). ----
        // Queries with the same fingerprint reduce the same `k` rows, so
        // the row-AND runs once per **unique fingerprint** and the result
        // fans out — even when the duplicates carry *different* candidate
        // masks (the same hot path entering through different servers).
        // Equal-mask duplicates share the representative's verdict
        // outright; a group with differing masks runs the representative
        // unmasked (live slots) and applies each duplicate's mask to the
        // surviving words at classification, which is bit-identical
        // because the AND-reduction is monotone:
        // `(mask ∧ live) ∧ rows == mask ∧ (live ∧ rows)`.
        // Detection is a sorted scan over the fingerprint lanes: an
        // all-distinct batch (the common case) pays one small sort and no
        // mask comparisons.
        rep.clear();
        rep.extend(0..b as u32);
        mixed.clear();
        mixed.resize(b, false);
        let mut dups = 0usize;
        if b > 1 {
            order.clear();
            order.extend(0..b as u32);
            order.sort_unstable_by_key(|&i| (fps[i as usize].lanes(), i));
            let mut start = 0usize;
            while start < b {
                let lanes = fps[order[start] as usize].lanes();
                let mut end = start + 1;
                while end < b && fps[order[end] as usize].lanes() == lanes {
                    end += 1;
                }
                // The earliest query of the group (order is sorted by
                // (lanes, i)) represents every later duplicate.
                let r = order[start] as usize;
                let mut group_mixed = false;
                for &oj in &order[start + 1..end] {
                    let j = oj as usize;
                    group_mixed |= query_masks[r] != query_masks[j];
                    rep[j] = r as u32;
                    dups += 1;
                }
                mixed[r] = group_mixed;
                start = end;
            }
        }
        sel.clear();
        pos.clear();
        pos.resize(b, 0);
        for i in 0..b {
            if rep[i] == i as u32 {
                pos[i] = sel.len() as u32;
                sel.push(i as u32);
            }
        }
        let uniq = sel.len();
        debug_assert_eq!(uniq + dups, b);

        // Per-representative candidate masks, flattened: representative
        // `q` owns words [q * stride, (q + 1) * stride). Every word is
        // overwritten below, so a stale scratch buffer is safe to reuse.
        mask_words.resize(uniq * stride, 0);
        let masks = &mut mask_words[..uniq * stride];
        for (chunk, &i) in masks.chunks_exact_mut(stride).zip(sel.iter()) {
            match &query_masks[i as usize] {
                // A mixed-group representative probes every live slot;
                // its own mask (with its duplicates') applies at
                // classification below.
                Some(mask) if !mixed[i as usize] => {
                    assert_eq!(
                        mask.words.len(),
                        stride,
                        "SlotMask predates a capacity growth; rebuild it"
                    );
                    for ((dst, cand), live) in chunk.iter_mut().zip(&mask.words).zip(&self.live) {
                        *dst = cand & live;
                    }
                }
                _ => chunk.copy_from_slice(&self.live),
            }
        }
        // Each representative's probe cursor: the `(h1, h2)` double-
        // hashing pair, advanced step by step inside the pass
        // (bit-identical to [`crate::hash::ProbeIndices`] by construction;
        // the property tests pin the equivalence).
        let fm = FastMod::new(self.shape.bits as u64);
        h1.clear();
        h2.clear();
        for &i in sel.iter() {
            let (a, bb) = fps[i as usize].pair(self.shape.seed);
            h1.push(a);
            h2.push(bb);
        }

        let hits: Vec<Hit<I>> = if stride == 1 {
            // Single-word masks (≤ 64 slots): each query's whole state
            // fits in registers and the sequential walk is already near
            // optimal, so the batch win is the shared fastmod derivation
            // and the amortized scratch — walk each fingerprint to
            // completion with everything register-resident.
            for q in 0..uniq {
                let mut cursor = h1[q];
                let step = h2[q];
                let mut mask = masks[q];
                for _ in 0..k {
                    if mask == 0 {
                        break;
                    }
                    let row = fm.rem(cursor) as usize;
                    cursor = cursor.wrapping_add(step);
                    mask &= self.slab[row];
                }
                masks[q] = mask;
            }
            masks.chunks_exact(1).map(|m| self.classify(m)).collect()
        } else {
            verdicts.clear();
            verdicts.resize(uniq, u64::MAX);
            run_batch_pass(&self.slab, stride, fm, k, h1, h2, rows, masks, verdicts);
            masks
                .chunks_exact(stride)
                .zip(verdicts.iter())
                .map(|(mask, &verdict)| {
                    if verdict == u64::MAX {
                        return self.classify(mask);
                    }
                    match verdict >> 32 {
                        0 => Hit::None,
                        1 => {
                            let slot = (verdict & 0xFFFF_FFFF) as usize;
                            Hit::Unique(self.slots[slot].expect("live slot has an id"))
                        }
                        _ => self.classify(mask),
                    }
                })
                .collect()
        };
        if dups == 0 {
            return hits;
        }
        // Fan each representative's verdict out to its duplicates. For a
        // mixed-mask group the stored surviving words are the *unmasked*
        // reduction, so each duplicate's candidate mask ANDs in here —
        // one `stride`-word pass per **distinct** mask instead of a full
        // `k × stride` row walk each: duplicates repeating a mask the
        // group already classified (the flash-crowd shape: many repeats
        // under few masks) reuse the memoized verdict, preserving the
        // old per-`(fingerprint, mask)` amortization.
        let masks: &[u64] = masks;
        classified.clear();
        let mut out: Vec<Hit<I>> = Vec::with_capacity(b);
        for i in 0..b {
            let r = rep[i] as usize;
            let p = pos[r] as usize;
            let hit = if !mixed[r] {
                hits[p].clone()
            } else {
                match &query_masks[i] {
                    None => hits[p].clone(),
                    Some(mask) => {
                        assert_eq!(
                            mask.words.len(),
                            stride,
                            "SlotMask predates a capacity growth; rebuild it"
                        );
                        let memo = classified.iter().find(|&&(cr, ci)| {
                            cr == rep[i] && query_masks[ci as usize] == query_masks[i]
                        });
                        match memo {
                            // `ci < i`, so its verdict is already in `out`.
                            Some(&(_, ci)) => out[ci as usize].clone(),
                            None => {
                                let survivors = &masks[p * stride..(p + 1) * stride];
                                fanout.clear();
                                fanout
                                    .extend(survivors.iter().zip(&mask.words).map(|(s, m)| s & m));
                                classified.push((rep[i], i as u32));
                                self.classify(fanout)
                            }
                        }
                    }
                }
            };
            out.push(hit);
        }
        out
    }

    fn reduce(&self, fp: &Fingerprint, candidates: &[u64]) -> Hit<I> {
        if self.stride == 1 {
            // Fast path covering arrays of up to 64 slots: the whole
            // candidate mask lives in one register.
            let mut mask = candidates[0] & self.live[0];
            for row in fp.probes(self.shape.seed, self.shape.bits, self.shape.hashes) {
                mask &= self.slab[row];
                if mask == 0 {
                    return Hit::None;
                }
            }
            return self.classify(&[mask]);
        }
        let mut mask: Vec<u64> = candidates
            .iter()
            .zip(&self.live)
            .map(|(c, l)| c & l)
            .collect();
        for row in fp.probes(self.shape.seed, self.shape.bits, self.shape.hashes) {
            let slice = &self.slab[row * self.stride..(row + 1) * self.stride];
            let mut any = 0u64;
            for (m, s) in mask.iter_mut().zip(slice) {
                *m &= s;
                any |= *m;
            }
            if any == 0 {
                return Hit::None;
            }
        }
        self.classify(&mask)
    }

    fn classify(&self, mask: &[u64]) -> Hit<I> {
        // Single pass: popcount and remember the last non-zero word (for
        // a unique hit it is the only one).
        let mut positives = 0u32;
        let mut hit_word = 0usize;
        for (word, &bits) in mask.iter().enumerate() {
            if bits != 0 {
                positives += bits.count_ones();
                hit_word = word;
            }
        }
        match positives {
            0 => Hit::None,
            1 => {
                let slot = hit_word * 64 + mask[hit_word].trailing_zeros() as usize;
                Hit::Unique(self.slots[slot].expect("live slot has an id"))
            }
            _ => {
                let mut ids = Vec::with_capacity(positives as usize);
                for (word, &bits) in mask.iter().enumerate() {
                    let mut remaining = bits;
                    while remaining != 0 {
                        let slot = word * 64 + remaining.trailing_zeros() as usize;
                        ids.push(self.slots[slot].expect("live slot has an id"));
                        remaining &= remaining - 1;
                    }
                }
                Hit::Multiple(ids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> FilterShape {
        FilterShape {
            bits: 4096,
            hashes: 5,
            seed: 11,
        }
    }

    fn array_with(entries: &[(u16, &[&str])]) -> SharedShapeArray<u16> {
        let mut array = SharedShapeArray::new(shape());
        for &(id, items) in entries {
            array.push(id).unwrap();
            for item in items {
                array.insert(id, item).unwrap();
            }
        }
        array
    }

    #[test]
    fn unique_hit_names_the_home() {
        let array = array_with(&[(1, &["a", "b"]), (2, &["c"])]);
        assert_eq!(array.query("c"), Hit::Unique(2));
        assert_eq!(array.query("a"), Hit::Unique(1));
        assert_eq!(array.query("missing"), Hit::None);
    }

    #[test]
    fn multiple_hits_reported_in_slot_order() {
        let array = array_with(&[(5, &["dup"]), (3, &["dup"])]);
        match array.query("dup") {
            Hit::Multiple(ids) => assert_eq!(ids, vec![5, 3]),
            other => panic!("expected multiple, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut array = array_with(&[(1, &[])]);
        assert_eq!(array.push(1), Err(BloomError::DuplicateId));
    }

    #[test]
    fn mismatched_filter_shape_rejected() {
        let mut array = SharedShapeArray::<u16>::new(shape());
        let alien = BloomFilter::new(128, 2, 9);
        assert!(matches!(
            array.push_filter(1, &alien),
            Err(BloomError::IncompatibleFilters { .. })
        ));
    }

    #[test]
    fn push_filter_transposes_bits() {
        let mut filter = BloomFilter::new(4096, 5, 11);
        for item in ["x", "y", "z"] {
            filter.insert(item);
        }
        let mut array = SharedShapeArray::new(shape());
        array.push_filter(7u16, &filter).unwrap();
        for item in ["x", "y", "z"] {
            assert_eq!(array.query(item), Hit::Unique(7));
        }
        assert_eq!(array.extract(7).unwrap(), filter);
    }

    #[test]
    fn replace_filter_swaps_column() {
        let mut old = BloomFilter::new(4096, 5, 11);
        old.insert("old");
        let mut new = BloomFilter::new(4096, 5, 11);
        new.insert("new");
        let mut array = SharedShapeArray::new(shape());
        array.push_filter(1u16, &old).unwrap();
        array.replace_filter(1u16, &new).unwrap();
        assert_eq!(array.query("new"), Hit::Unique(1));
        assert_eq!(array.query("old"), Hit::None);
        assert_eq!(array.replace_filter(9, &new), Err(BloomError::UnknownId));
    }

    #[test]
    fn remove_clears_column_before_reuse() {
        let mut array = array_with(&[(1, &["ghost"])]);
        assert!(array.remove(1));
        assert!(!array.remove(1));
        assert!(array.is_empty());
        array.push(2).unwrap();
        // Slot 0 is recycled; the ghost's bits must be gone.
        assert_eq!(array.query("ghost"), Hit::None);
        assert_eq!(array.len(), 1);
    }

    #[test]
    fn growth_past_64_slots_preserves_answers() {
        let mut array = SharedShapeArray::new(shape());
        for id in 0u16..130 {
            array.push(id).unwrap();
            array.insert(id, &format!("file-{id}")).unwrap();
        }
        assert_eq!(array.len(), 130);
        for id in 0u16..130 {
            let hit = array.query(&format!("file-{id}"));
            assert!(
                hit.candidates().contains(&id),
                "lost {id} after growth: {hit:?}"
            );
        }
    }

    #[test]
    fn masked_query_restricts_candidates() {
        let array = array_with(&[(1, &["dup"]), (2, &["dup"]), (3, &[])]);
        let fp = Fingerprint::of("dup");
        assert_eq!(array.query_fp_among(&fp, [1u16]), Hit::Unique(1));
        assert_eq!(array.query_fp_among(&fp, [3u16]), Hit::None);
        let mask = array.mask_all_except(1);
        assert_eq!(mask.len(), 2);
        assert_eq!(array.query_fp_masked(&fp, &mask), Hit::Unique(2));
    }

    #[test]
    fn transpose_64x64_is_a_transpose() {
        // Identity stays identity.
        let mut ident = [0u64; 64];
        for (i, w) in ident.iter_mut().enumerate() {
            *w = 1 << i;
        }
        let mut m = ident;
        transpose_64x64(&mut m);
        assert_eq!(m, ident);
        // A single off-diagonal bit moves to its mirrored position:
        // M[3][17] -> M[17][3].
        let mut m = [0u64; 64];
        m[3] = 1 << 17;
        transpose_64x64(&mut m);
        let mut expected = [0u64; 64];
        expected[17] = 1 << 3;
        assert_eq!(m, expected);
        // Involution on a pseudo-random matrix.
        let mut m = [0u64; 64];
        let mut x = 0x12345u64;
        for w in m.iter_mut() {
            x = crate::hash::splitmix64(x);
            *w = x;
        }
        let original = m;
        transpose_64x64(&mut m);
        assert_ne!(m, original);
        transpose_64x64(&mut m);
        assert_eq!(m, original);
    }

    /// The fused-classify kernel (the body behind the AVX512VPOPCNTDQ
    /// dispatch tier) must be bit-identical to the split kernel — same
    /// derived rows, same finished masks, same packed verdicts — at
    /// every stride the dispatcher can route to it, including the
    /// `k == 1` peel boundary and all-zero starting masks.
    #[test]
    fn fused_classify_kernel_matches_split_kernel() {
        fn lcg(state: &mut u64) -> u64 {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *state
        }
        fn check<const S: usize>(k: usize) {
            let row_count = 97usize;
            let mut seed = 0x5EED ^ (S as u64) << 8 ^ k as u64;
            let slab: Vec<u64> = (0..row_count * S).map(|_| lcg(&mut seed)).collect();
            let fm = FastMod::new(row_count as u64);
            let b = 33usize;
            let h1: Vec<u64> = (0..b).map(|_| lcg(&mut seed)).collect();
            let h2: Vec<u64> = (0..b).map(|_| lcg(&mut seed) | 1).collect();
            // Starting masks across the interesting shapes: all-ones
            // (the untargeted query), sparse (subset masks), all-zero.
            let base_masks: Vec<u64> = (0..b * S)
                .map(|i| match (i / S) % 3 {
                    0 => u64::MAX,
                    1 => lcg(&mut seed) & lcg(&mut seed),
                    _ => 0,
                })
                .collect();
            let (mut rows_a, mut rows_b) = (Vec::new(), Vec::new());
            let mut masks_a = base_masks.clone();
            let mut masks_b = base_masks;
            let mut verdicts_a = vec![0u64; b];
            let mut verdicts_b = vec![0u64; b];
            batch_pass_body::<S>(
                &slab,
                S,
                fm,
                k,
                &h1,
                &h2,
                &mut rows_a,
                &mut masks_a,
                &mut verdicts_a,
            );
            batch_pass_classify_body::<S>(
                &slab,
                fm,
                k,
                &h1,
                &h2,
                &mut rows_b,
                &mut masks_b,
                &mut verdicts_b,
            );
            assert_eq!(rows_a, rows_b, "derived rows diverged at stride {S}");
            assert_eq!(masks_a, masks_b, "masks diverged at stride {S}, k {k}");
            assert_eq!(
                verdicts_a, verdicts_b,
                "verdicts diverged at stride {S}, k {k}"
            );
        }
        for k in [1, 2, 5, 8] {
            check::<8>(k);
            check::<16>(k);
            check::<32>(k);
        }
    }

    #[test]
    fn query_batch_dedups_duplicate_fingerprints() {
        let array = array_with(&[(1, &["hot", "x"]), (2, &["cold"]), (3, &["hot"])]);
        let hot = Fingerprint::of("hot");
        let cold = Fingerprint::of("cold");
        let mut batch = ProbeBatch::new();
        // Duplicates with equal masks (share the verdict), differing
        // masks (share one row-AND, masks applied at classification),
        // plus distinct fingerprints.
        batch.push(hot);
        batch.push(cold);
        batch.push(hot);
        batch.push_masked(hot, array.subset_mask([1u16]));
        batch.push_masked(hot, array.subset_mask([1u16]));
        batch.push_masked(hot, array.subset_mask([3u16]));
        let hits = array.query_batch(&mut batch);
        assert_eq!(
            hits,
            vec![
                Hit::Multiple(vec![1, 3]),
                Hit::Unique(2),
                Hit::Multiple(vec![1, 3]),
                Hit::Unique(1),
                Hit::Unique(1),
                Hit::Unique(3),
            ]
        );
    }

    #[test]
    fn from_filters_builds_matching_array() {
        let mut a = BloomFilter::new(4096, 5, 11);
        a.insert("a");
        let mut b = BloomFilter::new(4096, 5, 11);
        b.insert("b");
        let array = SharedShapeArray::from_filters([(1u16, a), (2u16, b)]).unwrap();
        assert_eq!(array.query("a"), Hit::Unique(1));
        assert_eq!(array.query("b"), Hit::Unique(2));
        let empty = SharedShapeArray::<u16>::from_filters([]).unwrap();
        assert_eq!(empty.query("anything"), Hit::None);
    }

    #[test]
    fn apply_delta_matches_full_replace() {
        let mut old_filter = BloomFilter::new(4096, 5, 11);
        old_filter.insert("kept");
        let mut new_filter = old_filter.clone();
        for i in 0..40u32 {
            new_filter.insert(&format!("added-{i}"));
        }
        let delta = FilterDelta::between(&old_filter, &new_filter).unwrap();

        let mut array = SharedShapeArray::new(shape());
        array.push_filter(1u16, &old_filter).unwrap();
        array.push_filter(2u16, &new_filter).unwrap(); // bystander column
        array.apply_delta(1u16, &delta).unwrap();
        assert_eq!(array.extract(1).unwrap(), new_filter);
        assert_eq!(array.extract(2).unwrap(), new_filter);

        assert_eq!(array.apply_delta(9, &delta), Err(BloomError::UnknownId));
        let alien =
            FilterDelta::between(&BloomFilter::new(128, 2, 9), &BloomFilter::new(128, 2, 9))
                .unwrap();
        assert!(matches!(
            array.apply_delta(1, &alien),
            Err(BloomError::IncompatibleFilters { .. })
        ));
    }

    #[test]
    fn fastmod_matches_hardware_remainder() {
        for d in [1u64, 2, 3, 5, 63, 64, 4096, 32_000, 320_001, u64::MAX] {
            let fm = FastMod::new(d);
            for n in [
                0u64,
                1,
                d - 1,
                d,
                d.wrapping_add(1),
                d.wrapping_mul(977).wrapping_add(12),
                0x9E37_79B9_7F4A_7C15,
                u64::MAX,
                u64::MAX - 1,
            ] {
                assert_eq!(fm.rem(n), n % d, "n={n} d={d}");
            }
            // A pseudo-random sweep per modulus.
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for _ in 0..10_000 {
                x = crate::hash::splitmix64(x);
                assert_eq!(fm.rem(x), x % d, "n={x} d={d}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let array = array_with(&[(1, &["a", "dup"]), (2, &["b", "dup"]), (3, &[])]);
        let items = ["a", "b", "dup", "missing"];
        let mut batch = ProbeBatch::new();
        for item in items {
            batch.push(Fingerprint::of(item));
        }
        let hits = array.query_batch(&mut batch);
        for (item, hit) in items.iter().zip(&hits) {
            assert_eq!(*hit, array.query(item), "batch diverged on {item}");
        }
    }

    #[test]
    fn batch_masks_match_query_fp_among() {
        let array = array_with(&[(1, &["dup"]), (2, &["dup"]), (3, &[])]);
        let fp = Fingerprint::of("dup");
        let mut batch = ProbeBatch::new();
        batch.push_masked(fp, array.subset_mask([1u16]));
        batch.push_masked(fp, array.subset_mask([3u16]));
        batch.push_masked(fp, array.mask_all_except(1));
        batch.push(fp);
        let hits = array.query_batch(&mut batch);
        assert_eq!(hits[0], array.query_fp_among(&fp, [1u16]));
        assert_eq!(hits[1], array.query_fp_among(&fp, [3u16]));
        assert_eq!(
            hits[2],
            array.query_fp_masked(&fp, &array.mask_all_except(1))
        );
        assert_eq!(hits[3], array.query_fp(&fp));
        assert_eq!(hits[0], Hit::Unique(1));
        assert_eq!(hits[1], Hit::None);
        assert_eq!(hits[2], Hit::Unique(2));
        assert_eq!(hits[3], Hit::Multiple(vec![1, 2]));
    }

    #[test]
    fn empty_batch_returns_nothing() {
        let array = array_with(&[(1, &["a"])]);
        assert!(array.query_batch(&mut ProbeBatch::new()).is_empty());
    }

    #[test]
    fn batch_survives_growth_and_removal() {
        let mut array = SharedShapeArray::new(shape());
        for id in 0u16..130 {
            array.push(id).unwrap();
            array.insert(id, &format!("file-{id}")).unwrap();
        }
        array.remove(64);
        let mut batch = ProbeBatch::with_capacity(130);
        for id in 0u16..130 {
            batch.push(Fingerprint::of(&format!("file-{id}")));
        }
        let hits = array.query_batch(&mut batch);
        for (id, hit) in (0u16..130).zip(&hits) {
            assert_eq!(
                *hit,
                array.query(&format!("file-{id}")),
                "batch diverged on {id} after growth/removal"
            );
        }
        assert_eq!(hits[64], Hit::None);
    }

    #[test]
    fn batch_reuse_after_clear() {
        let array = array_with(&[(1, &["a"]), (2, &["b"])]);
        let mut batch = ProbeBatch::new();
        batch.push(Fingerprint::of("a"));
        assert_eq!(array.query_batch(&mut batch), vec![Hit::Unique(1)]);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.push(Fingerprint::of("b")), 0);
        assert_eq!(array.query_batch(&mut batch), vec![Hit::Unique(2)]);
    }

    #[test]
    #[should_panic(expected = "predates a capacity growth")]
    fn batch_stale_mask_panics() {
        let mut array = array_with(&[(1, &["a"])]);
        let mut batch = ProbeBatch::new();
        batch.push_masked(Fingerprint::of("a"), array.subset_mask([1u16]));
        for id in 10u16..90 {
            array.push(id).unwrap(); // forces a capacity growth
        }
        let _ = array.query_batch(&mut batch);
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_batch_kernel() {
        use std::time::Instant;
        let shape = FilterShape {
            bits: 320_000,
            hashes: 11,
            seed: 9,
        };
        let n: u16 = 1024;
        let items: u64 = 20_000;
        let mut array = SharedShapeArray::new(shape);
        for id in 0..n {
            array.push(id).unwrap();
            for i in 0..items {
                array.insert_fp(id, &Fingerprint::of(&(id, i))).unwrap();
            }
        }
        let fps: Vec<Fingerprint> = (0..512u64)
            .map(|i| Fingerprint::of(&((i % u64::from(n)) as u16, i % items)))
            .collect();
        let reps = 20_000usize;
        let b = 16usize;
        let stride = array.stride;
        let k = shape.hashes as usize;

        let mut sink = 0usize;
        let t = Instant::now();
        for r in 0..reps {
            for j in 0..b {
                sink += array
                    .query_fp(&fps[(r * b + j) % fps.len()])
                    .candidates()
                    .len();
            }
        }
        println!(
            "sequential      {:8.1} ns/lookup",
            t.elapsed().as_nanos() as f64 / (reps * b) as f64
        );

        let t = Instant::now();
        let mut batch = ProbeBatch::with_capacity(b);
        for r in 0..reps {
            batch.clear();
            for j in 0..b {
                batch.push(fps[(r * b + j) % fps.len()]);
            }
            sink += array
                .query_batch(&mut batch)
                .iter()
                .map(|h| h.candidates().len())
                .sum::<usize>();
        }
        println!(
            "query_batch     {:8.1} ns/lookup",
            t.elapsed().as_nanos() as f64 / (reps * b) as f64
        );

        // Kernel only: reused buffers, cursors rederived, no classify.
        let mut masks = vec![0u64; b * stride];
        let mut h1 = vec![0u64; b];
        let mut h2 = vec![0u64; b];
        let mut rows: Vec<u32> = Vec::new();
        let mut verdicts = vec![u64::MAX; b];
        let fm = FastMod::new(shape.bits as u64);
        let t = Instant::now();
        for r in 0..reps {
            for chunk in masks.chunks_exact_mut(stride) {
                chunk.copy_from_slice(&array.live);
            }
            for j in 0..b {
                let (a, bb) = fps[(r * b + j) % fps.len()].pair(shape.seed);
                h1[j] = a;
                h2[j] = bb;
            }
            run_batch_pass(
                &array.slab,
                stride,
                fm,
                k,
                &h1,
                &h2,
                &mut rows,
                &mut masks,
                &mut verdicts,
            );
            sink += masks[0] as usize & 1;
        }
        println!(
            "kernel+derive   {:8.1} ns/lookup",
            t.elapsed().as_nanos() as f64 / (reps * b) as f64
        );

        // Portable body, no AVX2 dispatch.
        let t = Instant::now();
        for r in 0..reps {
            for chunk in masks.chunks_exact_mut(stride) {
                chunk.copy_from_slice(&array.live);
            }
            for j in 0..b {
                let (a, bb) = fps[(r * b + j) % fps.len()].pair(shape.seed);
                h1[j] = a;
                h2[j] = bb;
            }
            batch_pass_body::<16>(
                &array.slab,
                stride,
                fm,
                k,
                &h1,
                &h2,
                &mut rows,
                &mut masks,
                &mut verdicts,
            );
            sink += masks[0] as usize & 1;
        }
        println!(
            "kernel portable {:8.1} ns/lookup",
            t.elapsed().as_nanos() as f64 / (reps * b) as f64
        );

        // Alloc + classify overheads.
        let t = Instant::now();
        for _ in 0..reps {
            let m = vec![0u64; b * stride];
            sink += m[0] as usize;
        }
        println!(
            "masks alloc     {:8.1} ns/lookup",
            t.elapsed().as_nanos() as f64 / (reps * b) as f64
        );
        let t = Instant::now();
        for _ in 0..reps {
            for chunk in masks.chunks_exact(stride) {
                sink += array.classify(chunk).candidates().len();
            }
        }
        println!(
            "classify        {:8.1} ns/lookup",
            t.elapsed().as_nanos() as f64 / (reps * b) as f64
        );
        assert!(sink > 0);
    }

    #[test]
    fn memory_matches_n_filters() {
        let mut array = SharedShapeArray::<u16>::new(shape());
        for id in 0..64u16 {
            array.push(id).unwrap();
        }
        // 64 slots × 4096 bits = one u64 per row.
        assert_eq!(array.memory_bytes(), 4096 * 8);
    }

    /// The read-sharing seam end to end: N threads probe one slab
    /// concurrently, each with its own `ProbeBatch` scratch arena, and
    /// every thread's batched answers equal the sequential reference.
    #[test]
    fn concurrent_query_batches_match_sequential() {
        let mut array = SharedShapeArray::<u16>::new(shape());
        for id in 0..96u16 {
            array.push(id).unwrap();
            for item in 0..40u32 {
                array.insert(id, &format!("/c/{id}/{item}")).unwrap();
            }
        }
        let fps: Vec<Fingerprint> = (0..96u16)
            .flat_map(|id| (0..3u32).map(move |item| Fingerprint::of(&format!("/c/{id}/{item}"))))
            .collect();
        let expected: Vec<Hit<u16>> = fps.iter().map(|fp| array.query_fp(fp)).collect();
        let array = &array;
        let fps = &fps;
        let expected = &expected;
        std::thread::scope(|scope| {
            for worker in 0..4 {
                scope.spawn(move || {
                    let mut batch = ProbeBatch::with_capacity(fps.len());
                    for _ in 0..3 {
                        batch.clear();
                        for fp in fps {
                            batch.push(*fp);
                        }
                        let hits = array.query_batch(&mut batch);
                        assert_eq!(&hits, expected, "worker {worker} diverged");
                    }
                });
            }
        });
    }
}
