//! Bit-sliced, shared-shape Bloom filter arrays — the hot-path probe
//! structure behind every level of the G-HBA query hierarchy.
//!
//! # Layout
//!
//! A [`SharedShapeArray`] holds up to `C` filters (slots) that all share one
//! [`FilterShape`] `(m, k, seed)`. Instead of `C` independent bit vectors,
//! the bits are stored **interleaved by bit position**: for each of the `m`
//! bit positions there is a row of `ceil(C/64)` words (`stride`) holding
//! that position's bit for *every* slot. Membership bit `j` of slot `s`
//! lives at word `slab[j * stride + s / 64]`, bit `s % 64`.
//!
//! A query therefore needs the item's `k` probe rows only **once** for the
//! whole array: starting from the live-slot mask, it ANDs the `k` rows
//! together — `k × stride` word loads — and the surviving mask bits *are*
//! the positive slots. Compare the classic array-of-filters walk, which
//! costs `N` separate filter traversals (`N × k` scattered bit reads) plus
//! `N` hashes without the hash-once [`Fingerprint`] path.
//!
//! # Invariants
//!
//! * All slots share the array's `FilterShape`; filters pushed in must match
//!   it exactly ([`BloomError::IncompatibleFilters`] otherwise), so a slot's
//!   probe rows are the same for every slot and the AND-reduction is sound.
//! * Probe sequences come from [`Fingerprint`] seed-mixing and are *bit
//!   identical* to [`crate::hash::probe_indices`] / [`BloomFilter`] probes:
//!   a `SharedShapeArray` answers exactly like a [`BloomFilterArray`] built
//!   from the same inserts (the property tests assert this).
//! * Freed slots are zeroed immediately and masked out of every query, so
//!   recycling a slot can never leak a predecessor's bits.
//!
//! # Examples
//!
//! ```
//! use ghba_bloom::{FilterShape, Fingerprint, Hit, SharedShapeArray};
//!
//! let shape = FilterShape { bits: 4096, hashes: 5, seed: 7 };
//! let mut array = SharedShapeArray::new(shape);
//! array.push(10u16)?;
//! array.push(11u16)?;
//! array.insert(10u16, "/projects/ghba/paper.tex")?;
//!
//! // Hash once, probe the whole array.
//! let fp = Fingerprint::of("/projects/ghba/paper.tex");
//! assert_eq!(array.query_fp(&fp), Hit::Unique(10));
//! assert_eq!(array.query("/somewhere/else"), Hit::None);
//! # Ok::<(), ghba_bloom::BloomError>(())
//! ```

use std::collections::HashMap;
use std::hash::Hash;

use crate::array::Hit;
use crate::error::{BloomError, FilterShape};
use crate::filter::BloomFilter;
use crate::hash::Fingerprint;
use crate::ops::FilterDelta;

/// A bit-sliced array of same-shape Bloom filters probed as one.
///
/// See the [module docs](self) for the layout and its invariants. `I`
/// identifies the server a slot summarizes (an `MdsId` upstream).
#[derive(Debug, Clone)]
pub struct SharedShapeArray<I> {
    shape: FilterShape,
    /// Words per bit-position row (`ceil(slot capacity / 64)`).
    stride: usize,
    /// `shape.bits * stride` words, interleaved by bit position.
    slab: Vec<u64>,
    /// Slot index → id; `None` marks a free (zeroed) slot.
    slots: Vec<Option<I>>,
    /// Bitmask of live slots, `stride` words.
    live: Vec<u64>,
    /// Recycled slot indices.
    free: Vec<usize>,
    /// id → slot, so hot-path mask building and inserts avoid an O(C)
    /// scan over `slots`.
    index: HashMap<I, usize>,
    /// Per-slot inserted-item bookkeeping (upper bound, like
    /// [`BloomFilter::item_count`]).
    items: Vec<usize>,
}

/// A precomputed candidate-slot mask for masked queries.
///
/// Build one with [`SharedShapeArray::subset_mask`] or
/// [`SharedShapeArray::mask_all_except`]; masks stay valid until the array's
/// slot assignment changes (a push, remove, or capacity growth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMask {
    words: Vec<u64>,
}

impl SlotMask {
    /// Number of candidate slots in the mask.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when no slot is selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl<I: Copy + Eq + Hash> SharedShapeArray<I> {
    /// Creates an empty array whose slots will all use `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `shape.bits == 0` or `shape.hashes == 0`.
    #[must_use]
    pub fn new(shape: FilterShape) -> Self {
        Self::with_capacity(shape, 64)
    }

    /// Creates an empty array pre-sized for `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `shape.bits == 0` or `shape.hashes == 0`.
    #[must_use]
    pub fn with_capacity(shape: FilterShape, capacity: usize) -> Self {
        assert!(shape.bits > 0, "filters must have at least one bit");
        assert!(shape.hashes > 0, "filters must use at least one hash");
        let stride = capacity.max(1).div_ceil(64);
        SharedShapeArray {
            shape,
            stride,
            slab: vec![0; shape.bits * stride],
            slots: Vec::new(),
            live: vec![0; stride],
            free: Vec::new(),
            index: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Builds an array from same-shape `(id, filter)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] on a shape mismatch and
    /// [`BloomError::DuplicateId`] on a repeated id.
    pub fn from_filters<T>(iter: T) -> Result<Self, BloomError>
    where
        T: IntoIterator<Item = (I, BloomFilter)>,
    {
        let mut iter = iter.into_iter();
        let Some((first_id, first)) = iter.next() else {
            // No filters means no shape to adopt; an arbitrary non-empty
            // shape keeps the array usable (every query answers `None`).
            return Ok(Self::new(FilterShape {
                bits: 64,
                hashes: 1,
                seed: 0,
            }));
        };
        let mut array = Self::new(first.shape());
        array.push_filter(first_id, &first)?;
        for (id, filter) in iter {
            array.push_filter(id, &filter)?;
        }
        Ok(array)
    }

    /// The shape shared by every slot.
    #[must_use]
    pub fn shape(&self) -> FilterShape {
        self.shape
    }

    /// Number of live slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` when no slot is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap footprint of the bit slab in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.slab.len() * 8
    }

    /// Live ids in slot order (insertion order when nothing was removed).
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        self.slots.iter().filter_map(|slot| *slot)
    }

    /// `true` if a slot for `id` is live.
    #[must_use]
    pub fn contains_id(&self, id: I) -> bool {
        self.slot_of(id).is_some()
    }

    fn slot_of(&self, id: I) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Doubles slot capacity, re-interleaving the slab.
    fn grow(&mut self) {
        let new_stride = self.stride * 2;
        let mut slab = vec![0u64; self.shape.bits * new_stride];
        for row in 0..self.shape.bits {
            let old = &self.slab[row * self.stride..(row + 1) * self.stride];
            slab[row * new_stride..row * new_stride + self.stride].copy_from_slice(old);
        }
        self.slab = slab;
        self.live.resize(new_stride, 0);
        self.stride = new_stride;
    }

    fn allocate_slot(&mut self, id: I) -> Result<usize, BloomError> {
        if self.contains_id(id) {
            return Err(BloomError::DuplicateId);
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(id);
                slot
            }
            None => {
                if self.slots.len() == self.stride * 64 {
                    self.grow();
                }
                self.slots.push(Some(id));
                self.items.push(0);
                self.slots.len() - 1
            }
        };
        self.items[slot] = 0;
        self.live[slot / 64] |= 1 << (slot % 64);
        self.index.insert(id, slot);
        Ok(slot)
    }

    /// Adds an empty filter slot for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::DuplicateId`] if `id` is already present.
    pub fn push(&mut self, id: I) -> Result<(), BloomError> {
        self.allocate_slot(id).map(|_| ())
    }

    /// Adds a slot for `id` holding a copy of `filter`'s bits.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] if `filter` does not
    /// match the array shape, or [`BloomError::DuplicateId`].
    pub fn push_filter(&mut self, id: I, filter: &BloomFilter) -> Result<(), BloomError> {
        self.check_shape(filter)?;
        let slot = self.allocate_slot(id)?;
        self.write_column(slot, filter);
        self.items[slot] = filter.item_count();
        Ok(())
    }

    /// Replaces the bits of `id`'s slot with `filter`'s.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] on a shape mismatch or
    /// [`BloomError::UnknownId`] if `id` is absent.
    pub fn replace_filter(&mut self, id: I, filter: &BloomFilter) -> Result<(), BloomError> {
        self.check_shape(filter)?;
        let slot = self.slot_of(id).ok_or(BloomError::UnknownId)?;
        self.clear_column(slot);
        self.write_column(slot, filter);
        self.items[slot] = filter.item_count();
        Ok(())
    }

    /// Removes `id`'s slot (zeroing its column); returns `false` when `id`
    /// was not present.
    pub fn remove(&mut self, id: I) -> bool {
        let Some(slot) = self.slot_of(id) else {
            return false;
        };
        self.clear_column(slot);
        self.slots[slot] = None;
        self.items[slot] = 0;
        self.live[slot / 64] &= !(1 << (slot % 64));
        self.free.push(slot);
        self.index.remove(&id);
        true
    }

    fn check_shape(&self, filter: &BloomFilter) -> Result<(), BloomError> {
        if filter.shape() == self.shape {
            Ok(())
        } else {
            Err(BloomError::IncompatibleFilters {
                left: self.shape,
                right: filter.shape(),
            })
        }
    }

    /// Transposes `filter`'s set bits into `slot`'s column.
    fn write_column(&mut self, slot: usize, filter: &BloomFilter) {
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        for (w, &src) in filter.words().iter().enumerate() {
            let mut remaining = src;
            while remaining != 0 {
                let row = w * 64 + remaining.trailing_zeros() as usize;
                self.slab[row * self.stride + word] |= bit;
                remaining &= remaining - 1;
            }
        }
    }

    fn clear_column(&mut self, slot: usize) {
        let (word, bit) = (slot / 64, !(1u64 << (slot % 64)));
        for row in 0..self.shape.bits {
            self.slab[row * self.stride + word] &= bit;
        }
    }

    /// Applies a sparse [`FilterDelta`] directly to `id`'s column: only the
    /// bit-rows of the delta's changed words are touched — `O(64 × changed
    /// words)` — instead of the three full-column passes an
    /// extract/apply/replace round trip would cost.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] on a shape mismatch,
    /// [`BloomError::UnknownId`] if `id` is absent, or
    /// [`BloomError::Corrupt`] if the delta indexes past the filter.
    pub fn apply_delta(&mut self, id: I, delta: &FilterDelta) -> Result<(), BloomError> {
        if delta.shape() != self.shape {
            return Err(BloomError::IncompatibleFilters {
                left: self.shape,
                right: delta.shape(),
            });
        }
        let slot = self.slot_of(id).ok_or(BloomError::UnknownId)?;
        let word_count = self.shape.bits.div_ceil(64);
        if delta
            .changed_words()
            .iter()
            .any(|&(idx, _)| idx as usize >= word_count)
        {
            return Err(BloomError::Corrupt("delta word index out of range"));
        }
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        for &(idx, new_word) in delta.changed_words() {
            let base = idx as usize * 64;
            let top = (base + 64).min(self.shape.bits);
            for row in base..top {
                let cell = &mut self.slab[row * self.stride + word];
                if new_word >> (row - base) & 1 == 1 {
                    *cell |= bit;
                } else {
                    *cell &= !bit;
                }
            }
        }
        self.items[slot] = delta.new_items();
        Ok(())
    }

    /// Reconstructs `id`'s slot as a standalone [`BloomFilter`] (used when
    /// shipping a replica or applying a [`crate::FilterDelta`]).
    #[must_use]
    pub fn extract(&self, id: I) -> Option<BloomFilter> {
        let slot = self.slot_of(id)?;
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        let mut filter = BloomFilter::new(self.shape.bits, self.shape.hashes, self.shape.seed);
        for row in 0..self.shape.bits {
            if self.slab[row * self.stride + word] & bit != 0 {
                filter.words_mut()[row / 64] |= 1 << (row % 64);
            }
        }
        filter.set_items(self.items[slot]);
        Some(filter)
    }

    /// Sets `item`'s bits in `id`'s slot.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::UnknownId`] if `id` is absent.
    pub fn insert<T: Hash + ?Sized>(&mut self, id: I, item: &T) -> Result<(), BloomError> {
        self.insert_fp(id, &Fingerprint::of(item))
    }

    /// Hash-once variant of [`insert`](SharedShapeArray::insert).
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::UnknownId`] if `id` is absent.
    pub fn insert_fp(&mut self, id: I, fp: &Fingerprint) -> Result<(), BloomError> {
        let slot = self.slot_of(id).ok_or(BloomError::UnknownId)?;
        let (word, bit) = (slot / 64, 1u64 << (slot % 64));
        for row in fp.probes(self.shape.seed, self.shape.bits, self.shape.hashes) {
            self.slab[row * self.stride + word] |= bit;
        }
        self.items[slot] += 1;
        Ok(())
    }

    /// A mask selecting the live slots of the given ids (unknown ids are
    /// ignored).
    pub fn subset_mask<T: IntoIterator<Item = I>>(&self, ids: T) -> SlotMask {
        let mut words = vec![0u64; self.stride];
        for id in ids {
            if let Some(slot) = self.slot_of(id) {
                words[slot / 64] |= 1 << (slot % 64);
            }
        }
        SlotMask { words }
    }

    /// A mask selecting every live slot except `id`'s.
    #[must_use]
    pub fn mask_all_except(&self, id: I) -> SlotMask {
        let mut words = self.live.clone();
        if let Some(slot) = self.slot_of(id) {
            words[slot / 64] &= !(1 << (slot % 64));
        }
        SlotMask { words }
    }

    /// Probes every live slot with `item` and classifies the positives.
    #[must_use]
    pub fn query<T: Hash + ?Sized>(&self, item: &T) -> Hit<I> {
        self.query_fp(&Fingerprint::of(item))
    }

    /// Hash-once probe of every live slot: `k × stride` word loads plus an
    /// AND-reduction, regardless of how many filters the array holds.
    #[must_use]
    pub fn query_fp(&self, fp: &Fingerprint) -> Hit<I> {
        self.reduce(fp, &self.live)
    }

    /// Masked hash-once probe: only slots in `mask` are candidates.
    /// # Panics
    ///
    /// Panics if `mask` predates a capacity growth of this array (a stale
    /// mask would silently exclude every slot beyond the old capacity).
    #[must_use]
    pub fn query_fp_masked(&self, fp: &Fingerprint, mask: &SlotMask) -> Hit<I> {
        assert_eq!(
            mask.words.len(),
            self.stride,
            "SlotMask predates a capacity growth; rebuild it"
        );
        self.reduce(fp, &mask.words)
    }

    /// Convenience: probe only the slots of `ids` (builds a transient mask).
    pub fn query_fp_among<T: IntoIterator<Item = I>>(&self, fp: &Fingerprint, ids: T) -> Hit<I> {
        let mask = self.subset_mask(ids);
        self.query_fp_masked(fp, &mask)
    }

    fn reduce(&self, fp: &Fingerprint, candidates: &[u64]) -> Hit<I> {
        if self.stride == 1 {
            // Fast path covering arrays of up to 64 slots: the whole
            // candidate mask lives in one register.
            let mut mask = candidates[0] & self.live[0];
            for row in fp.probes(self.shape.seed, self.shape.bits, self.shape.hashes) {
                mask &= self.slab[row];
                if mask == 0 {
                    return Hit::None;
                }
            }
            return self.classify(&[mask]);
        }
        let mut mask: Vec<u64> = candidates
            .iter()
            .zip(&self.live)
            .map(|(c, l)| c & l)
            .collect();
        for row in fp.probes(self.shape.seed, self.shape.bits, self.shape.hashes) {
            let slice = &self.slab[row * self.stride..(row + 1) * self.stride];
            let mut any = 0u64;
            for (m, s) in mask.iter_mut().zip(slice) {
                *m &= s;
                any |= *m;
            }
            if any == 0 {
                return Hit::None;
            }
        }
        self.classify(&mask)
    }

    fn classify(&self, mask: &[u64]) -> Hit<I> {
        let positives: u32 = mask.iter().map(|w| w.count_ones()).sum();
        match positives {
            0 => Hit::None,
            1 => {
                let word = mask.iter().position(|&w| w != 0).expect("one bit set");
                let slot = word * 64 + mask[word].trailing_zeros() as usize;
                Hit::Unique(self.slots[slot].expect("live slot has an id"))
            }
            _ => {
                let mut ids = Vec::with_capacity(positives as usize);
                for (word, &bits) in mask.iter().enumerate() {
                    let mut remaining = bits;
                    while remaining != 0 {
                        let slot = word * 64 + remaining.trailing_zeros() as usize;
                        ids.push(self.slots[slot].expect("live slot has an id"));
                        remaining &= remaining - 1;
                    }
                }
                Hit::Multiple(ids)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> FilterShape {
        FilterShape {
            bits: 4096,
            hashes: 5,
            seed: 11,
        }
    }

    fn array_with(entries: &[(u16, &[&str])]) -> SharedShapeArray<u16> {
        let mut array = SharedShapeArray::new(shape());
        for &(id, items) in entries {
            array.push(id).unwrap();
            for item in items {
                array.insert(id, item).unwrap();
            }
        }
        array
    }

    #[test]
    fn unique_hit_names_the_home() {
        let array = array_with(&[(1, &["a", "b"]), (2, &["c"])]);
        assert_eq!(array.query("c"), Hit::Unique(2));
        assert_eq!(array.query("a"), Hit::Unique(1));
        assert_eq!(array.query("missing"), Hit::None);
    }

    #[test]
    fn multiple_hits_reported_in_slot_order() {
        let array = array_with(&[(5, &["dup"]), (3, &["dup"])]);
        match array.query("dup") {
            Hit::Multiple(ids) => assert_eq!(ids, vec![5, 3]),
            other => panic!("expected multiple, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut array = array_with(&[(1, &[])]);
        assert_eq!(array.push(1), Err(BloomError::DuplicateId));
    }

    #[test]
    fn mismatched_filter_shape_rejected() {
        let mut array = SharedShapeArray::<u16>::new(shape());
        let alien = BloomFilter::new(128, 2, 9);
        assert!(matches!(
            array.push_filter(1, &alien),
            Err(BloomError::IncompatibleFilters { .. })
        ));
    }

    #[test]
    fn push_filter_transposes_bits() {
        let mut filter = BloomFilter::new(4096, 5, 11);
        for item in ["x", "y", "z"] {
            filter.insert(item);
        }
        let mut array = SharedShapeArray::new(shape());
        array.push_filter(7u16, &filter).unwrap();
        for item in ["x", "y", "z"] {
            assert_eq!(array.query(item), Hit::Unique(7));
        }
        assert_eq!(array.extract(7).unwrap(), filter);
    }

    #[test]
    fn replace_filter_swaps_column() {
        let mut old = BloomFilter::new(4096, 5, 11);
        old.insert("old");
        let mut new = BloomFilter::new(4096, 5, 11);
        new.insert("new");
        let mut array = SharedShapeArray::new(shape());
        array.push_filter(1u16, &old).unwrap();
        array.replace_filter(1u16, &new).unwrap();
        assert_eq!(array.query("new"), Hit::Unique(1));
        assert_eq!(array.query("old"), Hit::None);
        assert_eq!(array.replace_filter(9, &new), Err(BloomError::UnknownId));
    }

    #[test]
    fn remove_clears_column_before_reuse() {
        let mut array = array_with(&[(1, &["ghost"])]);
        assert!(array.remove(1));
        assert!(!array.remove(1));
        assert!(array.is_empty());
        array.push(2).unwrap();
        // Slot 0 is recycled; the ghost's bits must be gone.
        assert_eq!(array.query("ghost"), Hit::None);
        assert_eq!(array.len(), 1);
    }

    #[test]
    fn growth_past_64_slots_preserves_answers() {
        let mut array = SharedShapeArray::new(shape());
        for id in 0u16..130 {
            array.push(id).unwrap();
            array.insert(id, &format!("file-{id}")).unwrap();
        }
        assert_eq!(array.len(), 130);
        for id in 0u16..130 {
            let hit = array.query(&format!("file-{id}"));
            assert!(
                hit.candidates().contains(&id),
                "lost {id} after growth: {hit:?}"
            );
        }
    }

    #[test]
    fn masked_query_restricts_candidates() {
        let array = array_with(&[(1, &["dup"]), (2, &["dup"]), (3, &[])]);
        let fp = Fingerprint::of("dup");
        assert_eq!(array.query_fp_among(&fp, [1u16]), Hit::Unique(1));
        assert_eq!(array.query_fp_among(&fp, [3u16]), Hit::None);
        let mask = array.mask_all_except(1);
        assert_eq!(mask.len(), 2);
        assert_eq!(array.query_fp_masked(&fp, &mask), Hit::Unique(2));
    }

    #[test]
    fn from_filters_builds_matching_array() {
        let mut a = BloomFilter::new(4096, 5, 11);
        a.insert("a");
        let mut b = BloomFilter::new(4096, 5, 11);
        b.insert("b");
        let array = SharedShapeArray::from_filters([(1u16, a), (2u16, b)]).unwrap();
        assert_eq!(array.query("a"), Hit::Unique(1));
        assert_eq!(array.query("b"), Hit::Unique(2));
        let empty = SharedShapeArray::<u16>::from_filters([]).unwrap();
        assert_eq!(empty.query("anything"), Hit::None);
    }

    #[test]
    fn apply_delta_matches_full_replace() {
        let mut old_filter = BloomFilter::new(4096, 5, 11);
        old_filter.insert("kept");
        let mut new_filter = old_filter.clone();
        for i in 0..40u32 {
            new_filter.insert(&format!("added-{i}"));
        }
        let delta = FilterDelta::between(&old_filter, &new_filter).unwrap();

        let mut array = SharedShapeArray::new(shape());
        array.push_filter(1u16, &old_filter).unwrap();
        array.push_filter(2u16, &new_filter).unwrap(); // bystander column
        array.apply_delta(1u16, &delta).unwrap();
        assert_eq!(array.extract(1).unwrap(), new_filter);
        assert_eq!(array.extract(2).unwrap(), new_filter);

        assert_eq!(array.apply_delta(9, &delta), Err(BloomError::UnknownId));
        let alien =
            FilterDelta::between(&BloomFilter::new(128, 2, 9), &BloomFilter::new(128, 2, 9))
                .unwrap();
        assert!(matches!(
            array.apply_delta(1, &alien),
            Err(BloomError::IncompatibleFilters { .. })
        ));
    }

    #[test]
    fn memory_matches_n_filters() {
        let mut array = SharedShapeArray::<u16>::new(shape());
        for id in 0..64u16 {
            array.push(id).unwrap();
        }
        // 64 slots × 4096 bits = one u64 per row.
        assert_eq!(array.memory_bytes(), 4096 * 8);
    }
}
