//! Counting Bloom filters — deletable membership summaries.
//!
//! The paper's ID Bloom filter array (IDBFA, §2.4) uses counting filters so
//! that replica-location entries can be *removed* when a replica migrates to
//! a different MDS during group reconfiguration. The L1 LRU array likewise
//! needs deletion on eviction.

use std::hash::Hash;

use crate::error::{BloomError, FilterShape};
use crate::filter::BloomFilter;
use crate::hash::{probe_indices, Fingerprint};

/// A Bloom filter with per-position counters, supporting removal.
///
/// Counters are 8-bit and saturate at 255. A saturated counter is never
/// decremented (the standard safety rule: decrementing a saturated counter
/// could introduce false negatives), so pathological overload degrades
/// gracefully into a permanently-set bit rather than a correctness loss.
///
/// # Examples
///
/// ```
/// use ghba_bloom::CountingBloomFilter;
///
/// let mut f = CountingBloomFilter::new(1024, 4, 0);
/// f.insert("replica-of-mds-7");
/// assert!(f.contains("replica-of-mds-7"));
/// f.remove("replica-of-mds-7")?;
/// assert!(!f.contains("replica-of-mds-7"));
/// # Ok::<(), ghba_bloom::BloomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    bits: usize,
    hashes: u32,
    seed: u64,
    items: usize,
}

impl CountingBloomFilter {
    /// Creates an empty counting filter with `bits` counters and `hashes`
    /// hash functions, keyed by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    #[must_use]
    pub fn new(bits: usize, hashes: u32, seed: u64) -> Self {
        assert!(bits > 0, "filter must have at least one counter");
        assert!(hashes > 0, "filter must use at least one hash");
        CountingBloomFilter {
            counters: vec![0; bits],
            bits,
            hashes,
            seed,
            items: 0,
        }
    }

    /// Creates a counting filter sized for `expected_items` at
    /// `bits_per_item` counters per item, with the optimal hash count.
    ///
    /// # Panics
    ///
    /// Panics if `expected_items == 0` or `bits_per_item <= 0.0`.
    #[must_use]
    pub fn for_items(expected_items: usize, bits_per_item: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            bits_per_item > 0.0 && bits_per_item.is_finite(),
            "bits_per_item must be positive and finite"
        );
        let bits = ((expected_items as f64) * bits_per_item).ceil().max(64.0) as usize;
        let hashes = crate::analysis::optimal_hash_count(bits_per_item);
        CountingBloomFilter::new(bits, hashes, 0)
    }

    /// Returns `self` re-keyed with `seed` (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if any item has already been inserted.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        assert!(
            self.items == 0,
            "cannot re-seed a filter that already holds items"
        );
        self.seed = seed;
        self
    }

    /// The compatibility shape (counter count plays the role of bit count).
    #[must_use]
    pub fn shape(&self) -> FilterShape {
        FilterShape {
            bits: self.bits,
            hashes: self.hashes,
            seed: self.seed,
        }
    }

    /// Number of counters.
    #[must_use]
    pub fn counter_len(&self) -> usize {
        self.bits
    }

    /// Number of hash functions.
    #[must_use]
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }

    /// Hash-family seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Net number of items currently represented (inserts minus removals).
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.items
    }

    /// `true` when no item is represented.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Heap footprint in bytes (one byte per counter).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.counters.len()
    }

    /// Inserts `item`, incrementing its counters (saturating at 255).
    pub fn insert<T: Hash + ?Sized>(&mut self, item: &T) {
        self.insert_fp(&Fingerprint::of(item));
    }

    /// Hash-once variant of [`insert`](CountingBloomFilter::insert).
    pub fn insert_fp(&mut self, fp: &Fingerprint) {
        for idx in fp.probes(self.seed, self.bits, self.hashes) {
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
        self.items += 1;
    }

    /// Probabilistic membership test: `false` means definitely absent.
    #[must_use]
    pub fn contains<T: Hash + ?Sized>(&self, item: &T) -> bool {
        probe_indices(item, self.seed, self.bits, self.hashes).all(|idx| self.counters[idx] > 0)
    }

    /// Hash-once variant of [`contains`](CountingBloomFilter::contains);
    /// answers identically to `contains` for the fingerprinted item.
    #[must_use]
    pub fn contains_fp(&self, fp: &Fingerprint) -> bool {
        fp.probes(self.seed, self.bits, self.hashes)
            .all(|idx| self.counters[idx] > 0)
    }

    /// Membership test against precomputed probe rows, as derived for this
    /// filter's [`shape`](CountingBloomFilter::shape) by
    /// [`Fingerprint::probe_rows_into`] or
    /// [`crate::ProbeBatch::derive_rows_into`]. Answers identically to
    /// [`contains_fp`](CountingBloomFilter::contains_fp) for the same item
    /// — the row derivation is shared across a whole batched sweep instead
    /// of re-run per `(query, filter)` pair.
    ///
    /// # Panics
    ///
    /// Panics (via indexing) if a row is outside this filter's width,
    /// i.e. the rows were derived for a different shape.
    #[must_use]
    pub fn contains_rows(&self, rows: &[u32]) -> bool {
        rows.iter().all(|&idx| self.counters[idx as usize] > 0)
    }

    /// Removes one occurrence of `item`, decrementing its counters.
    ///
    /// Saturated counters (255) are left untouched per the standard rule.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::AbsentItem`] — without modifying any counter —
    /// if some counter for `item` is already zero (the item was definitely
    /// never inserted, or was already removed).
    pub fn remove<T: Hash + ?Sized>(&mut self, item: &T) -> Result<(), BloomError> {
        self.remove_fp(&Fingerprint::of(item))
    }

    /// Hash-once variant of [`remove`](CountingBloomFilter::remove).
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::AbsentItem`] under the same conditions as
    /// [`remove`](CountingBloomFilter::remove).
    pub fn remove_fp(&mut self, fp: &Fingerprint) -> Result<(), BloomError> {
        if !self.contains_fp(fp) {
            return Err(BloomError::AbsentItem);
        }
        for idx in fp.probes(self.seed, self.bits, self.hashes) {
            let c = &mut self.counters[idx];
            if *c != u8::MAX {
                *c -= 1;
            }
        }
        self.items = self.items.saturating_sub(1);
        Ok(())
    }

    /// Resets the filter to empty, keeping its shape.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.items = 0;
    }

    /// Number of non-zero counters.
    #[must_use]
    pub fn ones(&self) -> usize {
        self.counters.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of non-zero counters, in `[0, 1]`.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.ones() as f64 / self.bits as f64
    }

    /// Estimated false-positive probability from the observed fill ratio.
    #[must_use]
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.hashes as i32)
    }

    /// Collapses the counters into a plain [`BloomFilter`] with the same
    /// shape (counter > 0 ⇒ bit set). Used when shipping a snapshot over the
    /// network: replicas are plain filters, only the owner needs counters.
    #[must_use]
    pub fn to_bloom_filter(&self) -> BloomFilter {
        let mut plain = BloomFilter::new(self.bits, self.hashes, self.seed);
        for (idx, &c) in self.counters.iter().enumerate() {
            if c > 0 {
                plain.words_mut()[idx / 64] |= 1 << (idx % 64);
            }
        }
        plain.set_items(self.items);
        plain
    }

    /// Largest counter value (diagnostics: how close to saturation).
    #[must_use]
    pub fn max_counter(&self) -> u8 {
        self.counters.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut f = CountingBloomFilter::new(512, 4, 1);
        f.insert("a");
        f.insert("b");
        assert!(f.contains("a"));
        f.remove("a").unwrap();
        assert!(!f.contains("a"));
        assert!(f.contains("b"));
        assert_eq!(f.item_count(), 1);
    }

    #[test]
    fn remove_absent_is_error_and_nondestructive() {
        let mut f = CountingBloomFilter::new(512, 4, 1);
        f.insert("present");
        let before = f.clone();
        assert_eq!(f.remove("never-inserted"), Err(BloomError::AbsentItem));
        assert_eq!(f, before);
    }

    #[test]
    fn double_insert_requires_double_remove() {
        let mut f = CountingBloomFilter::new(512, 4, 1);
        f.insert("x");
        f.insert("x");
        f.remove("x").unwrap();
        assert!(f.contains("x"), "one copy should remain");
        f.remove("x").unwrap();
        assert!(!f.contains("x"));
    }

    #[test]
    fn to_bloom_filter_preserves_membership() {
        let mut f = CountingBloomFilter::new(2048, 5, 9);
        for i in 0..200u32 {
            f.insert(&i);
        }
        let plain = f.to_bloom_filter();
        for i in 0..200u32 {
            assert!(plain.contains(&i));
        }
        assert_eq!(plain.item_count(), 200);
        assert_eq!(plain.shape(), f.shape());
        assert_eq!(plain.ones(), f.ones());
    }

    #[test]
    fn saturation_never_causes_false_negative() {
        let mut f = CountingBloomFilter::new(8, 2, 3);
        // Hammer a tiny filter far past saturation.
        for i in 0..10_000u32 {
            f.insert(&i);
        }
        assert_eq!(f.max_counter(), u8::MAX);
        // Removing items cannot clear saturated counters, so earlier items
        // must still test positive.
        for i in 1_000..2_000u32 {
            let _ = f.remove(&i);
        }
        for i in 0..1_000u32 {
            assert!(f.contains(&i));
        }
    }

    #[test]
    fn clear_resets_counters() {
        let mut f = CountingBloomFilter::new(64, 2, 0);
        f.insert("x");
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn for_items_geometry() {
        let f = CountingBloomFilter::for_items(100, 10.0);
        assert!(f.counter_len() >= 1000);
        assert_eq!(f.hash_count(), 7); // 10 ln2 ≈ 6.93
    }

    #[test]
    fn memory_is_one_byte_per_counter() {
        let f = CountingBloomFilter::new(777, 3, 0);
        assert_eq!(f.memory_bytes(), 777);
    }
}
