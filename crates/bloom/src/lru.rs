//! The L1 structure: LRU Bloom filter arrays capturing temporal locality.
//!
//! §2.1 of the paper: *"each MDS is designed to maintain 'hot data', i.e.,
//! home MDS information for recently accessed files, that are stored in an
//! LRU Bloom filter array."* Plain Bloom filters cannot evict, so this module
//! offers two constructions:
//!
//! * [`LruBloomArray`] — **exact LRU** (the default, as in the HBA journal
//!   version): an explicit recency queue over 128-bit file fingerprints
//!   drives evictions, and per-home *counting* filters answer the actual
//!   probabilistic query. The queue is bookkeeping only — queries never read
//!   it, so L1 keeps the paper's false-positive behaviour.
//! * [`GenerationalLruArray`] — **approximate LRU** via double buffering:
//!   two plain-filter generations per home, rotated when the active one
//!   fills. Cheaper (no queue, no counters) but coarser eviction; shipped as
//!   the ablation variant exercised in `benches/ablation_lru.rs`.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::array::Hit;
use crate::counting::CountingBloomFilter;
use crate::filter::BloomFilter;
use crate::hash::Fingerprint;

/// Exact-LRU Bloom filter array over recently accessed `(file, home)` pairs.
///
/// Holds at most `capacity` distinct files; recording an existing file
/// refreshes its recency (and re-homes it if the home changed). Queries probe
/// the per-home counting filters, so results carry Bloom-filter false
/// positives exactly like any other level of the hierarchy.
///
/// # Examples
///
/// ```
/// use ghba_bloom::{Hit, LruBloomArray};
///
/// let mut lru = LruBloomArray::new(2, 1024, 4, 7);
/// lru.record("f1", 10u32);
/// lru.record("f2", 11u32);
/// lru.record("f3", 10u32); // evicts f1
/// assert_eq!(lru.query("f3"), Hit::Unique(10));
/// assert_eq!(lru.query("f1"), Hit::None);
/// ```
#[derive(Debug, Clone)]
pub struct LruBloomArray<I> {
    capacity: usize,
    filter_bits: usize,
    filter_hashes: u32,
    seed: u64,
    filters: Vec<(I, CountingBloomFilter)>,
    /// fingerprint → (home, latest sequence number)
    residents: HashMap<u128, (I, u64)>,
    /// Lazily cleaned recency queue of (sequence, fingerprint); stale pairs
    /// (sequence older than `residents`) are skipped at eviction time.
    order: VecDeque<(u64, u128)>,
    next_seq: u64,
    hits: u64,
    misses: u64,
}

impl<I: Copy + Eq> LruBloomArray<I> {
    /// Creates an LRU array holding up to `capacity` files, with per-home
    /// counting filters of `filter_bits` counters and `filter_hashes`
    /// hashes, keyed by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`, `filter_bits == 0`, or
    /// `filter_hashes == 0`.
    #[must_use]
    pub fn new(capacity: usize, filter_bits: usize, filter_hashes: u32, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(filter_bits > 0, "filters must have at least one counter");
        assert!(filter_hashes > 0, "filters must use at least one hash");
        LruBloomArray {
            capacity,
            filter_bits,
            filter_hashes,
            seed,
            filters: Vec::new(),
            residents: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of resident files.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.residents.len()
    }

    /// `true` when nothing is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.residents.is_empty()
    }

    /// `(unique hits, misses)` observed so far via
    /// [`query_counted`](LruBloomArray::query_counted).
    #[must_use]
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn filter_mut(&mut self, home: I) -> &mut CountingBloomFilter {
        if let Some(pos) = self.filters.iter().position(|(id, _)| *id == home) {
            return &mut self.filters[pos].1;
        }
        self.filters.push((
            home,
            CountingBloomFilter::new(self.filter_bits, self.filter_hashes, self.seed),
        ));
        &mut self.filters.last_mut().expect("just pushed").1
    }

    fn unrecord(&mut self, fp: u128, home: I) {
        if let Some((_, filter)) = self.filters.iter_mut().find(|(id, _)| *id == home) {
            // The fingerprint was inserted exactly once per residency, so
            // the removal must succeed; a failure would mean bookkeeping
            // desync, which we surface loudly in debug builds.
            let removed = filter.remove(&fp);
            debug_assert!(removed.is_ok(), "LRU bookkeeping desynchronized");
        }
    }

    fn evict_oldest(&mut self) {
        while let Some((seq, fp)) = self.order.pop_front() {
            match self.residents.get(&fp) {
                Some(&(home, live_seq)) if live_seq == seq => {
                    self.residents.remove(&fp);
                    self.unrecord(fp, home);
                    return;
                }
                _ => {
                    // Stale queue entry (the file was re-accessed later);
                    // skip and keep looking.
                }
            }
        }
    }

    /// Records an access to `item` whose home MDS is `home`.
    ///
    /// Re-recording refreshes recency; if the home changed (e.g. after a
    /// rename or migration) the stale mapping is replaced. May evict the
    /// least-recently used resident.
    pub fn record<T: Hash + ?Sized>(&mut self, item: &T, home: I) {
        self.record_fp(&Fingerprint::of(item), home);
    }

    /// Hash-once variant of [`record`](LruBloomArray::record): reuses a
    /// [`Fingerprint`] computed upstream (e.g. by the lookup that just
    /// resolved this item's home).
    pub fn record_fp(&mut self, item_fp: &Fingerprint, home: I) {
        let fp = item_fp.identity128(self.seed);
        let seq = self.next_seq;
        self.next_seq += 1;
        match self.residents.get_mut(&fp) {
            Some(entry) => {
                let (old_home, _) = *entry;
                if old_home != home {
                    self.unrecord(fp, old_home);
                    self.filter_mut(home).insert(&fp);
                }
                *self.residents.get_mut(&fp).expect("resident") = (home, seq);
            }
            None => {
                self.residents.insert(fp, (home, seq));
                self.filter_mut(home).insert(&fp);
                if self.residents.len() > self.capacity {
                    self.evict_oldest();
                }
            }
        }
        self.order.push_back((seq, fp));
        // Bound the lazy queue: compact when it grows well past the live set.
        if self.order.len() > self.capacity.saturating_mul(4).max(64) {
            self.compact_queue();
        }
    }

    fn compact_queue(&mut self) {
        let residents = &self.residents;
        self.order
            .retain(|(seq, fp)| residents.get(fp).is_some_and(|&(_, live)| live == *seq));
    }

    /// Probes the per-home filters with `item` and classifies positives.
    ///
    /// This is a *Bloom filter* query: false positives (including multi-hit
    /// ambiguity) are possible, false negatives are not (for resident
    /// files).
    #[must_use]
    pub fn query<T: Hash + ?Sized>(&self, item: &T) -> Hit<I> {
        self.query_fp(&Fingerprint::of(item))
    }

    /// Hash-once variant of [`query`](LruBloomArray::query): derives this
    /// array's 128-bit identity from `item_fp` (no re-hash of the item
    /// bytes), then digests it once more for the per-home filters. Answers
    /// identically to [`query`](LruBloomArray::query).
    #[must_use]
    pub fn query_fp(&self, item_fp: &Fingerprint) -> Hit<I> {
        let fp = item_fp.identity128(self.seed);
        // One 16-byte digest shared by every per-home filter probe.
        let probe = Fingerprint::of(&fp);
        let mut positives: Vec<I> = Vec::new();
        for (id, filter) in &self.filters {
            if filter.contains_fp(&probe) {
                positives.push(*id);
            }
        }
        match positives.len() {
            0 => Hit::None,
            1 => Hit::Unique(positives[0]),
            _ => Hit::Multiple(positives),
        }
    }

    /// Like [`query`](LruBloomArray::query) but also updates the hit/miss
    /// counters reported by [`hit_stats`](LruBloomArray::hit_stats).
    pub fn query_counted<T: Hash + ?Sized>(&mut self, item: &T) -> Hit<I> {
        let hit = self.query(item);
        if hit.is_unique() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Forgets every resident whose home is `home` (used when that MDS
    /// leaves the system or fails).
    pub fn purge_home(&mut self, home: I) {
        self.filters.retain(|(id, _)| *id != home);
        self.residents.retain(|_, (h, _)| *h != home);
        let residents = &self.residents;
        self.order.retain(|(_, fp)| residents.contains_key(fp));
    }

    /// Total heap footprint of the per-home filters in bytes (excludes the
    /// bookkeeping queue, which a production implementation sizes in the
    /// tens of bytes per resident).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.filters.iter().map(|(_, f)| f.memory_bytes()).sum()
    }
}

/// Approximate-LRU variant: two plain-filter generations per home.
///
/// Inserts go to the *current* generation; once it has absorbed
/// `generation_capacity` records, the *previous* generation is dropped and
/// the current one takes its place. Queries consult both generations, so an
/// item survives between one and two generation lifetimes — classic
/// double-buffered aging.
#[derive(Debug, Clone)]
pub struct GenerationalLruArray<I> {
    generation_capacity: usize,
    filter_bits: usize,
    filter_hashes: u32,
    seed: u64,
    current: Vec<(I, BloomFilter)>,
    previous: Vec<(I, BloomFilter)>,
    current_count: usize,
    rotations: u64,
}

impl<I: Copy + Eq> GenerationalLruArray<I> {
    /// Creates a generational array that rotates after
    /// `generation_capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero.
    #[must_use]
    pub fn new(
        generation_capacity: usize,
        filter_bits: usize,
        filter_hashes: u32,
        seed: u64,
    ) -> Self {
        assert!(generation_capacity > 0, "capacity must be positive");
        assert!(filter_bits > 0, "filters must have at least one bit");
        assert!(filter_hashes > 0, "filters must use at least one hash");
        GenerationalLruArray {
            generation_capacity,
            filter_bits,
            filter_hashes,
            seed,
            current: Vec::new(),
            previous: Vec::new(),
            current_count: 0,
            rotations: 0,
        }
    }

    /// How many times the generations have rotated.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    fn current_filter_mut(&mut self, home: I) -> &mut BloomFilter {
        if let Some(pos) = self.current.iter().position(|(id, _)| *id == home) {
            return &mut self.current[pos].1;
        }
        self.current.push((
            home,
            BloomFilter::new(self.filter_bits, self.filter_hashes, self.seed),
        ));
        &mut self.current.last_mut().expect("just pushed").1
    }

    /// Records an access to `item` with home `home`, rotating generations
    /// when the current one is full.
    pub fn record<T: Hash + ?Sized>(&mut self, item: &T, home: I) {
        self.current_filter_mut(home).insert(item);
        self.current_count += 1;
        if self.current_count >= self.generation_capacity {
            self.previous = std::mem::take(&mut self.current);
            self.current_count = 0;
            self.rotations += 1;
        }
    }

    /// Probes both generations and classifies positives (a home positive in
    /// either generation counts once).
    #[must_use]
    pub fn query<T: Hash + ?Sized>(&self, item: &T) -> Hit<I> {
        let mut positives: Vec<I> = Vec::new();
        for (id, filter) in self.current.iter().chain(&self.previous) {
            if filter.contains(item) && !positives.contains(id) {
                positives.push(*id);
            }
        }
        match positives.len() {
            0 => Hit::None,
            1 => Hit::Unique(positives[0]),
            _ => Hit::Multiple(positives),
        }
    }

    /// Forgets all filters for `home` in both generations.
    pub fn purge_home(&mut self, home: I) {
        self.current.retain(|(id, _)| *id != home);
        self.previous.retain(|(id, _)| *id != home);
    }

    /// Total heap footprint of both generations in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.current
            .iter()
            .chain(&self.previous)
            .map(|(_, f)| f.memory_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_queryable() {
        let mut lru = LruBloomArray::new(10, 2048, 4, 5);
        lru.record("a", 1u32);
        lru.record("b", 2u32);
        assert_eq!(lru.query("a"), Hit::Unique(1));
        assert_eq!(lru.query("b"), Hit::Unique(2));
        assert_eq!(lru.query("c"), Hit::None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_is_lru_ordered() {
        let mut lru = LruBloomArray::new(2, 2048, 4, 5);
        lru.record("a", 1u32);
        lru.record("b", 1u32);
        lru.record("a", 1u32); // refresh a → b is now oldest
        lru.record("c", 1u32); // evicts b
        assert_eq!(lru.query("a"), Hit::Unique(1));
        assert_eq!(lru.query("c"), Hit::Unique(1));
        assert_eq!(lru.query("b"), Hit::None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn rehoming_replaces_stale_mapping() {
        let mut lru = LruBloomArray::new(4, 2048, 4, 5);
        lru.record("f", 1u32);
        lru.record("f", 2u32); // migrated
        assert_eq!(lru.query("f"), Hit::Unique(2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn purge_home_forgets_everything_there() {
        let mut lru = LruBloomArray::new(8, 2048, 4, 5);
        lru.record("a", 1u32);
        lru.record("b", 2u32);
        lru.purge_home(1);
        assert_eq!(lru.query("a"), Hit::None);
        assert_eq!(lru.query("b"), Hit::Unique(2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn hit_stats_count_unique_only() {
        let mut lru = LruBloomArray::new(4, 2048, 4, 5);
        lru.record("a", 1u32);
        let _ = lru.query_counted("a"); // hit
        let _ = lru.query_counted("zz"); // miss
        assert_eq!(lru.hit_stats(), (1, 1));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut lru = LruBloomArray::new(16, 4096, 4, 5);
        for i in 0..10_000u32 {
            lru.record(&i, (i % 3) as u64);
        }
        assert_eq!(lru.len(), 16);
        // The 16 most recent must all be resident and queryable.
        for i in 9_984..10_000u32 {
            assert!(lru.query(&i).is_unique(), "recent item {i} missing");
        }
    }

    #[test]
    fn generational_rotation_ages_out_items() {
        let mut lru = GenerationalLruArray::new(4, 2048, 4, 5);
        for i in 0..4u32 {
            lru.record(&i, 1u32);
        }
        assert_eq!(lru.rotations(), 1);
        // Items are now in the previous generation: still visible.
        assert_eq!(lru.query(&0u32), Hit::Unique(1));
        for i in 4..8u32 {
            lru.record(&i, 1u32);
        }
        assert_eq!(lru.rotations(), 2);
        // First batch dropped with the second rotation.
        assert_eq!(lru.query(&0u32), Hit::None);
        assert_eq!(lru.query(&7u32), Hit::Unique(1));
    }

    #[test]
    fn generational_purge_home() {
        let mut lru = GenerationalLruArray::new(100, 2048, 4, 5);
        lru.record("x", 1u32);
        lru.record("y", 2u32);
        lru.purge_home(1);
        assert_eq!(lru.query("x"), Hit::None);
        assert_eq!(lru.query("y"), Hit::Unique(2));
    }

    #[test]
    fn memory_accounts_for_filters() {
        let mut lru = LruBloomArray::new(4, 1024, 4, 5);
        assert_eq!(lru.memory_bytes(), 0);
        lru.record("a", 1u32);
        assert_eq!(lru.memory_bytes(), 1024); // one counting filter, 1 B/counter
        lru.record("b", 2u32);
        assert_eq!(lru.memory_bytes(), 2048);
    }
}
