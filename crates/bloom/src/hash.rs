//! Seeded hashing machinery shared by every filter in this crate, built
//! around **hash-once fingerprints**.
//!
//! All filters use the Kirsch–Mitzenmacher double-hashing construction: two
//! independent 64-bit hashes `h1`, `h2` are derived from the item, and the
//! `i`-th probe index is `(h1 + i * h2) mod m`. This matches the behaviour of
//! `k` independent hash functions closely enough for Bloom filter false-rate
//! analysis while requiring only one pass over the item bytes.
//!
//! # Hash-once design
//!
//! The G-HBA query hierarchy probes *arrays* of filters — one per candidate
//! MDS — at every level, and again on every multicast recipient. Hashing the
//! pathname once per filter would make an N-filter probe cost `O(N·|path|)`;
//! instead, the item bytes are consumed exactly once into a seed-independent
//! [`Fingerprint`] (two independent FNV-1a lanes), and every filter's
//! `(h1, h2)` pair is derived from the fingerprint by **seed-mixing**: the
//! filter seed is avalanche-mixed with [`splitmix64`] and folded into each
//! lane at finalization time, never into the byte pass. Derivation is O(1)
//! per filter, so an N-filter probe costs one byte pass plus `O(N)` mixes.
//!
//! Invariant relied on throughout the crate (and enforced by construction):
//! for every item and seed, [`Fingerprint::pair`] equals [`index_pair`] and
//! therefore [`Fingerprint::probes`] yields exactly the same index sequence
//! as [`probe_indices`]. All single-item entry points are thin wrappers over
//! the fingerprint path.
//!
//! Hashing is keyed by a `u64` seed so that distinct filter families (e.g.
//! the L1 LRU array vs. the L2 segment array in G-HBA) probe uncorrelated
//! positions, and so that tests can build adversarial or reproducible
//! layouts.

use std::hash::{Hash, Hasher};

/// `splitmix64` finalizer — the standard 64-bit avalanche mix.
///
/// Used to decorrelate the weakly mixing FNV lanes, to fold seeds in at
/// finalization time, and to derive secondary seeds from primary ones.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Lane A: the standard FNV-1a offset/prime pair.
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME_A: u64 = 0x1000_0000_01B3;
/// Lane B: a distinct offset and a distinct odd multiplier, so the two
/// lanes respond differently to content (not just to a constant offset).
const FNV_OFFSET_B: u64 = 0xBB67_AE85_84CA_A73B;
const FNV_PRIME_B: u64 = 0x9E37_79B9_7F4A_7C15;

/// Key decorrelating the `h2` stream from the `h1` stream.
const H2_KEY: u64 = 0xA076_1D64_78BD_642F;
/// Key decorrelating the 128-bit identity fingerprint from probe streams.
const FP128_KEY: u64 = 0x6A09_E667_F3BC_C909;

/// A seed-independent digest of one item: the anchor of the hash-once path.
///
/// Computed with exactly one pass over the item bytes ([`Fingerprint::of`]),
/// it can then derive the probe stream of *any* filter — whatever its seed
/// or geometry — in O(1) via [`pair`](Fingerprint::pair) /
/// [`probes`](Fingerprint::probes). Compute it once at the query entry
/// point, reuse it across every filter of every level (and ship it in
/// multicast probe messages so recipients never re-hash the path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    a: u64,
    b: u64,
}

impl Fingerprint {
    /// Digests `item` (the single byte pass of the hash-once path).
    #[inline]
    #[must_use]
    pub fn of<T: Hash + ?Sized>(item: &T) -> Self {
        let mut hasher = FingerprintHasher::new();
        item.hash(&mut hasher);
        hasher.fingerprint()
    }

    /// Reassembles a fingerprint from its raw lanes (wire decoding).
    #[inline]
    #[must_use]
    pub fn from_lanes(a: u64, b: u64) -> Self {
        Fingerprint { a, b }
    }

    /// The raw lanes (wire encoding).
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> (u64, u64) {
        (self.a, self.b)
    }

    /// Derives the double-hashing pair `(h1, h2)` for the filter family
    /// keyed by `seed`. Equals [`index_pair`] for the same item and seed.
    ///
    /// `h2` is forced odd so that successive probe indices do not collapse
    /// when the filter length shares factors with `h2`.
    #[inline]
    #[must_use]
    pub fn pair(&self, seed: u64) -> (u64, u64) {
        let h1 = splitmix64(self.a ^ splitmix64(seed));
        let h2 = splitmix64(self.b ^ splitmix64(seed ^ H2_KEY)) | 1;
        (h1, h2)
    }

    /// The `k` probe indices for this item in a filter of `m` bits keyed by
    /// `seed`. Identical to [`probe_indices`] for the same item.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`; a zero-width filter is a construction error
    /// upstream.
    #[inline]
    #[must_use]
    pub fn probes(&self, seed: u64, m: usize, k: u32) -> ProbeIndices {
        assert!(m > 0, "filter must have at least one bit");
        let (h1, h2) = self.pair(seed);
        ProbeIndices {
            h1,
            h2,
            m: m as u64,
            remaining: k,
        }
    }

    /// Appends this item's `k` probe rows for a filter family `(m, k,
    /// seed)` to `out` as compact `u32` indices — a utility for tools
    /// that want a fingerprint's whole probe set materialized at once
    /// (tracing, debugging, precomputed probe tables).
    ///
    /// The batched probe path
    /// ([`crate::SharedShapeArray::query_batch`]) does *not* call this:
    /// its kernel derives rows inline with a shared-modulus fastmod so
    /// the derivation overlaps the slab loads.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `m` does not fit in a `u32` (no filter in this
    /// workspace comes near 4 Gbit).
    #[inline]
    pub fn probe_rows_into(&self, seed: u64, m: usize, k: u32, out: &mut Vec<u32>) {
        assert!(u32::try_from(m).is_ok(), "filter wider than u32 rows");
        out.reserve(k as usize);
        for row in self.probes(seed, m, k) {
            out.push(row as u32);
        }
    }

    /// The 128-bit near-exact identity under `seed`. Equals
    /// [`fingerprint128`] for the same item and seed.
    #[inline]
    #[must_use]
    pub fn identity128(&self, seed: u64) -> u128 {
        let (a, b) = self.pair(seed ^ FP128_KEY);
        (u128::from(a) << 64) | u128::from(b)
    }
}

/// The streaming two-lane FNV-1a hasher behind [`Fingerprint::of`].
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    a: u64,
    b: u64,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintHasher {
    /// Creates a hasher with empty lanes.
    #[must_use]
    pub fn new() -> Self {
        FingerprintHasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    /// Finalizes into a [`Fingerprint`].
    #[inline]
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            a: self.a,
            b: self.b,
        }
    }
}

impl Hasher for FingerprintHasher {
    /// Lane A, unseeded and un-avalanched; prefer
    /// [`fingerprint`](FingerprintHasher::fingerprint).
    #[inline]
    fn finish(&self) -> u64 {
        self.a
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME_A);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME_B);
        }
    }
}

/// A seeded streaming hasher implementing [`std::hash::Hasher`].
///
/// Streams bytes through the fingerprint lanes and folds the seed in at
/// finalization, so [`SeededHasher::finish`] agrees with [`hash_one`] (and
/// with lane `h1` of the fingerprint path) for the same bytes and seed.
#[derive(Debug, Clone)]
pub struct SeededHasher {
    lanes: FingerprintHasher,
    seed: u64,
}

impl SeededHasher {
    /// Creates a hasher keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededHasher {
            lanes: FingerprintHasher::new(),
            seed,
        }
    }
}

impl Hasher for SeededHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.lanes.fingerprint().pair(self.seed).0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.lanes.write(bytes);
    }
}

/// Hashes `item` with the family keyed by `seed`, returning one 64-bit value.
#[inline]
#[must_use]
pub fn hash_one<T: Hash + ?Sized>(item: &T, seed: u64) -> u64 {
    Fingerprint::of(item).pair(seed).0
}

/// Derives the double-hashing pair `(h1, h2)` for `item` under `seed`.
///
/// Thin wrapper over [`Fingerprint::pair`]; the two are identical by
/// construction (the property tests assert it).
#[inline]
#[must_use]
pub fn index_pair<T: Hash + ?Sized>(item: &T, seed: u64) -> (u64, u64) {
    Fingerprint::of(item).pair(seed)
}

/// A 128-bit fingerprint of `item`, used where near-exact identity is needed
/// (e.g. the exact-LRU bookkeeping behind the L1 array).
#[inline]
#[must_use]
pub fn fingerprint128<T: Hash + ?Sized>(item: &T, seed: u64) -> u128 {
    Fingerprint::of(item).identity128(seed)
}

/// Iterator over the `k` probe indices of an item in a filter of `m` bits.
///
/// Produced by [`probe_indices`] and [`Fingerprint::probes`]; see the module
/// docs for the construction.
#[derive(Debug, Clone)]
pub struct ProbeIndices {
    h1: u64,
    h2: u64,
    m: u64,
    remaining: u32,
}

impl Iterator for ProbeIndices {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let idx = (self.h1 % self.m) as usize;
        self.h1 = self.h1.wrapping_add(self.h2);
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProbeIndices {}

/// Returns the `k` probe indices for `item` in a filter of `m` bits keyed by
/// `seed`.
///
/// # Panics
///
/// Panics if `m == 0`; a zero-width filter is a construction error upstream.
#[inline]
#[must_use]
pub fn probe_indices<T: Hash + ?Sized>(item: &T, seed: u64, m: usize, k: u32) -> ProbeIndices {
    Fingerprint::of(item).probes(seed, m, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_bijective_on_samples() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_one_depends_on_seed() {
        let a = hash_one("path/to/file", 1);
        let b = hash_one("path/to/file", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_one_is_deterministic() {
        assert_eq!(hash_one(&42u64, 7), hash_one(&42u64, 7));
    }

    #[test]
    fn hash_one_matches_streaming_hasher() {
        let mut hasher = SeededHasher::new(9);
        "path/to/file".hash(&mut hasher);
        assert_eq!(hasher.finish(), hash_one("path/to/file", 9));
    }

    #[test]
    fn index_pair_h2_is_odd() {
        for i in 0..100u32 {
            let (_, h2) = index_pair(&i, 99);
            assert_eq!(h2 & 1, 1);
        }
    }

    #[test]
    fn fingerprint_pair_matches_index_pair() {
        for i in 0..200u64 {
            let fp = Fingerprint::of(&i);
            for seed in [0u64, 1, 42, u64::MAX] {
                assert_eq!(fp.pair(seed), index_pair(&i, seed));
            }
        }
    }

    #[test]
    fn fingerprint_probes_match_probe_indices() {
        let fp = Fingerprint::of("some/long/path/name.ext");
        let from_fp: Vec<usize> = fp.probes(11, 4096, 6).collect();
        let direct: Vec<usize> = probe_indices("some/long/path/name.ext", 11, 4096, 6).collect();
        assert_eq!(from_fp, direct);
    }

    #[test]
    fn probe_rows_into_matches_probes() {
        let fp = Fingerprint::of("batched/path");
        let mut rows = Vec::new();
        fp.probe_rows_into(11, 4096, 6, &mut rows);
        let direct: Vec<u32> = fp.probes(11, 4096, 6).map(|r| r as u32).collect();
        assert_eq!(rows, direct);
        // Appends rather than clears: a batch reuses one scratch vector.
        fp.probe_rows_into(11, 4096, 6, &mut rows);
        assert_eq!(rows.len(), 12);
    }

    #[test]
    fn fingerprint_lane_roundtrip() {
        let fp = Fingerprint::of("x");
        let (a, b) = fp.lanes();
        assert_eq!(Fingerprint::from_lanes(a, b), fp);
    }

    #[test]
    fn probe_indices_yields_exactly_k() {
        let idx: Vec<usize> = probe_indices("f", 3, 1024, 7).collect();
        assert_eq!(idx.len(), 7);
        assert!(idx.iter().all(|&i| i < 1024));
    }

    #[test]
    fn probe_indices_exact_size_hint() {
        let it = probe_indices("f", 3, 1024, 5);
        assert_eq!(it.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn probe_indices_zero_width_panics() {
        let _ = probe_indices("f", 3, 0, 1);
    }

    #[test]
    fn fingerprints_distinguish_items() {
        let mut seen = HashSet::new();
        for i in 0..50_000u64 {
            assert!(seen.insert(fingerprint128(&i, 0)), "collision at {i}");
        }
    }

    #[test]
    fn probe_distribution_is_roughly_uniform() {
        // Chi-square-ish sanity check: across many items, bucket occupancy
        // of the first probe should be close to uniform.
        let m = 64usize;
        let mut counts = vec![0u32; m];
        let samples = 64_000;
        for i in 0..samples {
            let first = probe_indices(&i, 11, m, 1).next().unwrap();
            counts[first] += 1;
        }
        let expected = samples as f64 / m as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let deviation = (f64::from(c) - expected).abs() / expected;
            assert!(
                deviation < 0.15,
                "bucket {bucket} off by {deviation:.2} ({c} vs {expected})"
            );
        }
    }
}
