//! Seeded hashing machinery shared by every filter in this crate.
//!
//! All filters use the Kirsch–Mitzenmacher double-hashing construction: two
//! independent 64-bit hashes `h1`, `h2` are derived from the item, and the
//! `i`-th probe index is `(h1 + i * h2) mod m`. This matches the behaviour of
//! `k` independent hash functions closely enough for Bloom filter false-rate
//! analysis while requiring only one pass over the item bytes.
//!
//! Hashing is keyed by a `u64` seed so that distinct filter families (e.g.
//! the L1 LRU array vs. the L2 segment array in G-HBA) probe uncorrelated
//! positions, and so that tests can build adversarial or reproducible
//! layouts.

use std::hash::{Hash, Hasher};

/// `splitmix64` finalizer — the standard 64-bit avalanche mix.
///
/// Used both to post-process the weakly mixing FNV state and to derive
/// secondary seeds from primary ones.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01B3;

/// A seeded streaming hasher implementing [`std::hash::Hasher`].
///
/// Internally FNV-1a over the written bytes, finalized with [`splitmix64`]
/// for avalanche. Not cryptographic; adequate and fast for Bloom filters.
#[derive(Debug, Clone)]
pub struct SeededHasher {
    state: u64,
}

impl SeededHasher {
    /// Creates a hasher keyed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededHasher {
            state: FNV_OFFSET ^ splitmix64(seed),
        }
    }
}

impl Hasher for SeededHasher {
    #[inline]
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Hashes `item` with the family keyed by `seed`, returning one 64-bit value.
#[inline]
#[must_use]
pub fn hash_one<T: Hash + ?Sized>(item: &T, seed: u64) -> u64 {
    let mut hasher = SeededHasher::new(seed);
    item.hash(&mut hasher);
    hasher.finish()
}

/// Derives the double-hashing pair `(h1, h2)` for `item` under `seed`.
///
/// `h2` is forced odd so that successive probe indices do not collapse when
/// the filter length shares factors with `h2`.
#[inline]
#[must_use]
pub fn index_pair<T: Hash + ?Sized>(item: &T, seed: u64) -> (u64, u64) {
    let h1 = hash_one(item, seed);
    // Independent second stream: re-key rather than re-mix, so that h2 is not
    // a function of h1 alone.
    let h2 = hash_one(item, splitmix64(seed ^ 0xA076_1D64_78BD_642F)) | 1;
    (h1, h2)
}

/// A 128-bit fingerprint of `item`, used where near-exact identity is needed
/// (e.g. the exact-LRU bookkeeping behind the L1 array).
#[inline]
#[must_use]
pub fn fingerprint128<T: Hash + ?Sized>(item: &T, seed: u64) -> u128 {
    let (a, b) = index_pair(item, seed ^ 0x6A09_E667_F3BC_C909);
    (u128::from(a) << 64) | u128::from(b)
}

/// Iterator over the `k` probe indices of an item in a filter of `m` bits.
///
/// Produced by [`probe_indices`]; see the module docs for the construction.
#[derive(Debug, Clone)]
pub struct ProbeIndices {
    h1: u64,
    h2: u64,
    m: u64,
    remaining: u32,
}

impl Iterator for ProbeIndices {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let idx = (self.h1 % self.m) as usize;
        self.h1 = self.h1.wrapping_add(self.h2);
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ProbeIndices {}

/// Returns the `k` probe indices for `item` in a filter of `m` bits keyed by
/// `seed`.
///
/// # Panics
///
/// Panics if `m == 0`; a zero-width filter is a construction error upstream.
#[inline]
#[must_use]
pub fn probe_indices<T: Hash + ?Sized>(item: &T, seed: u64, m: usize, k: u32) -> ProbeIndices {
    assert!(m > 0, "filter must have at least one bit");
    let (h1, h2) = index_pair(item, seed);
    ProbeIndices {
        h1,
        h2,
        m: m as u64,
        remaining: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_bijective_on_samples() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_one_depends_on_seed() {
        let a = hash_one("path/to/file", 1);
        let b = hash_one("path/to/file", 2);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_one_is_deterministic() {
        assert_eq!(hash_one(&42u64, 7), hash_one(&42u64, 7));
    }

    #[test]
    fn index_pair_h2_is_odd() {
        for i in 0..100u32 {
            let (_, h2) = index_pair(&i, 99);
            assert_eq!(h2 & 1, 1);
        }
    }

    #[test]
    fn probe_indices_yields_exactly_k() {
        let idx: Vec<usize> = probe_indices("f", 3, 1024, 7).collect();
        assert_eq!(idx.len(), 7);
        assert!(idx.iter().all(|&i| i < 1024));
    }

    #[test]
    fn probe_indices_exact_size_hint() {
        let it = probe_indices("f", 3, 1024, 5);
        assert_eq!(it.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn probe_indices_zero_width_panics() {
        let _ = probe_indices("f", 3, 0, 1);
    }

    #[test]
    fn fingerprints_distinguish_items() {
        let mut seen = HashSet::new();
        for i in 0..50_000u64 {
            assert!(seen.insert(fingerprint128(&i, 0)), "collision at {i}");
        }
    }

    #[test]
    fn probe_distribution_is_roughly_uniform() {
        // Chi-square-ish sanity check: across many items, bucket occupancy
        // of the first probe should be close to uniform.
        let m = 64usize;
        let mut counts = vec![0u32; m];
        let samples = 64_000;
        for i in 0..samples {
            let first = probe_indices(&i, 11, m, 1).next().unwrap();
            counts[first] += 1;
        }
        let expected = samples as f64 / m as f64;
        for (bucket, &c) in counts.iter().enumerate() {
            let deviation = (f64::from(c) - expected).abs() / expected;
            assert!(
                deviation < 0.15,
                "bucket {bucket} off by {deviation:.2} ({c} vs {expected})"
            );
        }
    }
}
