//! Error types for the Bloom filter toolkit.

use core::fmt;

/// The shape parameters that two filters must share before any algebraic
/// operation (union, intersection, XOR distance, delta application) between
/// them is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilterShape {
    /// Number of bits in the filter.
    pub bits: usize,
    /// Number of hash functions.
    pub hashes: u32,
    /// Seed of the hash family.
    pub seed: u64,
}

impl fmt::Display for FilterShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m={} bits, k={}, seed={:#x}",
            self.bits, self.hashes, self.seed
        )
    }
}

/// Errors produced by filter and filter-array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BloomError {
    /// Two filters with different geometry or hash seeds were combined.
    IncompatibleFilters {
        /// Shape of the left-hand filter.
        left: FilterShape,
        /// Shape of the right-hand filter.
        right: FilterShape,
    },
    /// An identifier was inserted twice into a [`BloomFilterArray`].
    ///
    /// [`BloomFilterArray`]: crate::BloomFilterArray
    DuplicateId,
    /// An operation referenced an identifier absent from the array.
    UnknownId,
    /// A serialized filter failed validation while decoding.
    Corrupt(&'static str),
    /// A counting-filter removal was requested for an item that is not
    /// present (some counter is already zero).
    AbsentItem,
}

impl fmt::Display for BloomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BloomError::IncompatibleFilters { left, right } => {
                write!(f, "incompatible filters: {left} vs {right}")
            }
            BloomError::DuplicateId => write!(f, "identifier already present in array"),
            BloomError::UnknownId => write!(f, "identifier not present in array"),
            BloomError::Corrupt(what) => write!(f, "corrupt filter encoding: {what}"),
            BloomError::AbsentItem => write!(f, "item not present in counting filter"),
        }
    }
}

impl std::error::Error for BloomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_incompatible_mentions_both_shapes() {
        let err = BloomError::IncompatibleFilters {
            left: FilterShape {
                bits: 64,
                hashes: 3,
                seed: 1,
            },
            right: FilterShape {
                bits: 128,
                hashes: 3,
                seed: 1,
            },
        };
        let text = err.to_string();
        assert!(text.contains("m=64"));
        assert!(text.contains("m=128"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BloomError>();
    }

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        for err in [
            BloomError::DuplicateId,
            BloomError::UnknownId,
            BloomError::Corrupt("magic"),
            BloomError::AbsentItem,
        ] {
            let text = err.to_string();
            assert!(!text.ends_with('.'), "{text:?} ends with a period");
            assert!(
                text.chars().next().is_some_and(|c| c.is_lowercase()),
                "{text:?} starts uppercase"
            );
        }
    }
}
