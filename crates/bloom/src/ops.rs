//! Set algebra over Bloom filters (§3.4 of the paper) and the sparse delta
//! encoding used by the replica-update protocol.
//!
//! * Property 1: `BF(A ∪ B)` = bitwise OR — exact for unions.
//! * Property 2: `BF(A) & BF(B)` over-approximates `BF(A ∩ B)`.
//! * Property 3: `BF(A ⊕ B) = BF(A−B) ∪ BF(B−A)`; with only the two filters
//!   in hand the bitwise XOR is the usable proxy, and its popcount (the
//!   [`BloomFilter::xor_distance`]) drives update scheduling.

use crate::error::BloomError;
use crate::filter::BloomFilter;

/// Returns `BF(A ∪ B)` (Property 1).
///
/// # Errors
///
/// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
pub fn union(a: &BloomFilter, b: &BloomFilter) -> Result<BloomFilter, BloomError> {
    let mut out = a.clone();
    out.union_assign(b)?;
    Ok(out)
}

/// Returns the bitwise-AND filter, an over-approximation of `BF(A ∩ B)`
/// (Property 2).
///
/// # Errors
///
/// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
pub fn intersect(a: &BloomFilter, b: &BloomFilter) -> Result<BloomFilter, BloomError> {
    let mut out = a.clone();
    out.intersect_assign(b)?;
    Ok(out)
}

/// Returns the bitwise-XOR filter — the usable proxy for `BF(A ⊕ B)`
/// (Property 3). Positions set here are positions where exactly one of the
/// two filters has a bit, i.e. the candidate difference region.
///
/// # Errors
///
/// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
pub fn symmetric_difference(a: &BloomFilter, b: &BloomFilter) -> Result<BloomFilter, BloomError> {
    if a.shape() != b.shape() {
        return Err(BloomError::IncompatibleFilters {
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut out = a.clone();
    for (w, src) in out.words_mut().iter_mut().zip(b.words()) {
        *w ^= src;
    }
    // Item count is not meaningful for an XOR filter; report 0 and let the
    // caller reason from the bit vector.
    out.set_items(0);
    Ok(out)
}

/// A sparse, wire-friendly encoding of "how to turn filter `old` into
/// filter `new`": the 64-bit words that changed, by index.
///
/// When a home MDS refreshes the replicas of its filter, shipping a
/// `FilterDelta` instead of the whole filter shrinks update traffic in
/// proportion to the churn since the last refresh.
///
/// # Examples
///
/// ```
/// use ghba_bloom::{BloomFilter, FilterDelta};
///
/// let old = BloomFilter::new(1024, 4, 0);
/// let mut new = old.clone();
/// new.insert("freshly-created-file");
/// let delta = FilterDelta::between(&old, &new)?;
/// let mut replica = old.clone();
/// delta.apply(&mut replica)?;
/// assert!(replica.contains("freshly-created-file"));
/// # Ok::<(), ghba_bloom::BloomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterDelta {
    shape: crate::error::FilterShape,
    changed: Vec<(u32, u64)>,
    new_items: usize,
}

impl FilterDelta {
    /// Computes the delta turning `old` into `new`.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
    pub fn between(old: &BloomFilter, new: &BloomFilter) -> Result<Self, BloomError> {
        if old.shape() != new.shape() {
            return Err(BloomError::IncompatibleFilters {
                left: old.shape(),
                right: new.shape(),
            });
        }
        let changed = old
            .words()
            .iter()
            .zip(new.words())
            .enumerate()
            .filter(|(_, (o, n))| o != n)
            .map(|(i, (_, n))| (i as u32, *n))
            .collect();
        Ok(FilterDelta {
            shape: old.shape(),
            changed,
            new_items: new.item_count(),
        })
    }

    /// Number of changed words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.changed.len()
    }

    /// `true` when the delta is a no-op.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// Bytes this delta would occupy on the wire: 4 (index) + 8 (word) per
    /// entry plus a fixed 24-byte header.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        24 + self.changed.len() * 12
    }

    /// Applies the delta to `target`, which must look like the `old` side.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] if `target`'s shape does
    /// not match, or [`BloomError::Corrupt`] if a word index is out of
    /// range.
    pub fn apply(&self, target: &mut BloomFilter) -> Result<(), BloomError> {
        if target.shape() != self.shape {
            return Err(BloomError::IncompatibleFilters {
                left: target.shape(),
                right: self.shape,
            });
        }
        let word_count = target.words().len();
        if self
            .changed
            .iter()
            .any(|&(idx, _)| idx as usize >= word_count)
        {
            return Err(BloomError::Corrupt("delta word index out of range"));
        }
        for &(idx, word) in &self.changed {
            target.words_mut()[idx as usize] = word;
        }
        target.set_items(self.new_items);
        Ok(())
    }

    /// The filter geometry this delta applies to.
    #[must_use]
    pub fn shape(&self) -> crate::error::FilterShape {
        self.shape
    }

    /// The changed 64-bit words as `(word index, new value)` pairs — the
    /// sparse payload [`SharedShapeArray::apply_delta`] writes directly
    /// into a slab column.
    ///
    /// [`SharedShapeArray::apply_delta`]: crate::SharedShapeArray::apply_delta
    #[must_use]
    pub fn changed_words(&self) -> &[(u32, u64)] {
        &self.changed
    }

    /// The item count of the post-delta filter.
    #[must_use]
    pub fn new_items(&self) -> usize {
        self.new_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (BloomFilter, BloomFilter) {
        let mut a = BloomFilter::new(2048, 4, 3);
        let mut b = BloomFilter::new(2048, 4, 3);
        for i in 0..50u32 {
            a.insert(&("a", i));
            b.insert(&("b", i));
        }
        (a, b)
    }

    #[test]
    fn union_is_commutative_on_bits() {
        let (a, b) = pair();
        let ab = union(&a, &b).unwrap();
        let ba = union(&b, &a).unwrap();
        assert_eq!(ab.words(), ba.words());
    }

    #[test]
    fn union_never_loses_membership() {
        let (a, b) = pair();
        let u = union(&a, &b).unwrap();
        for i in 0..50u32 {
            assert!(u.contains(&("a", i)));
            assert!(u.contains(&("b", i)));
        }
    }

    #[test]
    fn intersect_contains_shared_members() {
        let mut a = BloomFilter::new(4096, 4, 3);
        let mut b = BloomFilter::new(4096, 4, 3);
        a.insert("both");
        b.insert("both");
        a.insert("only-a");
        b.insert("only-b");
        let i = intersect(&a, &b).unwrap();
        assert!(i.contains("both"));
    }

    #[test]
    fn symmetric_difference_clears_common_bits() {
        let (a, _) = pair();
        let x = symmetric_difference(&a, &a).unwrap();
        assert_eq!(x.ones(), 0);
    }

    #[test]
    fn symmetric_difference_popcount_matches_xor_distance() {
        let (a, b) = pair();
        let x = symmetric_difference(&a, &b).unwrap();
        assert_eq!(x.ones(), a.xor_distance(&b).unwrap());
    }

    #[test]
    fn delta_roundtrip() {
        let old = BloomFilter::new(4096, 4, 3);
        let mut new = old.clone();
        for i in 0..20u32 {
            new.insert(&i);
        }
        let delta = FilterDelta::between(&old, &new).unwrap();
        assert!(!delta.is_empty());
        let mut replica = old.clone();
        delta.apply(&mut replica).unwrap();
        assert_eq!(replica, new);
    }

    #[test]
    fn empty_delta_for_identical_filters() {
        let (a, _) = pair();
        let delta = FilterDelta::between(&a, &a).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.wire_bytes(), 24);
    }

    #[test]
    fn delta_wire_size_scales_with_churn() {
        let old = BloomFilter::new(65_536, 4, 3);
        let mut small_change = old.clone();
        small_change.insert("one");
        let mut big_change = old.clone();
        for i in 0..2_000u32 {
            big_change.insert(&i);
        }
        let small = FilterDelta::between(&old, &small_change).unwrap();
        let big = FilterDelta::between(&old, &big_change).unwrap();
        assert!(small.wire_bytes() < big.wire_bytes());
        assert!(small.wire_bytes() < old.memory_bytes());
    }

    #[test]
    fn mismatched_shapes_rejected_everywhere() {
        let a = BloomFilter::new(64, 2, 0);
        let b = BloomFilter::new(128, 2, 0);
        assert!(union(&a, &b).is_err());
        assert!(intersect(&a, &b).is_err());
        assert!(symmetric_difference(&a, &b).is_err());
        assert!(FilterDelta::between(&a, &b).is_err());
        let delta = FilterDelta::between(&a, &a).unwrap();
        let mut c = BloomFilter::new(128, 2, 0);
        assert!(delta.apply(&mut c).is_err());
    }
}
