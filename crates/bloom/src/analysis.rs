//! Closed-form false-rate analysis for Bloom filters and filter arrays.
//!
//! Implements the formulas the paper leans on:
//!
//! * the textbook false-positive probability `f₀ = (1 − e^{−kn/m})^k` and
//!   its optimum `(0.6185)^{m/n}` at `k = (m/n)·ln 2` (Broder &
//!   Mitzenmacher, cited as \[30\]);
//! * Equation (1): the probability `f⁺_g` that a **segment** Bloom filter
//!   array of `θ` replicas returns a *false unique hit*;
//! * bounds on the false rates of unioned and intersected filters
//!   (§3.4 propositions).

/// `ln 2`, the constant relating bits-per-item to the optimal hash count.
pub const LN2: f64 = core::f64::consts::LN_2;

/// The base of the optimal false-positive rate: `0.5^{ln 2} ≈ 0.6185`.
///
/// The paper writes the optimum as `0.6185^{m/n}`.
pub const OPTIMAL_BASE: f64 = 0.618_503_137_645_726_6;

/// Optimal number of hash functions for a given bits-per-item ratio:
/// `k = (m/n)·ln 2`, rounded to the nearest integer, at least 1.
///
/// # Panics
///
/// Panics if `bits_per_item` is not finite and positive.
#[must_use]
pub fn optimal_hash_count(bits_per_item: f64) -> u32 {
    assert!(
        bits_per_item.is_finite() && bits_per_item > 0.0,
        "bits_per_item must be positive and finite"
    );
    ((bits_per_item * LN2).round() as u32).max(1)
}

/// Textbook false-positive probability `(1 − e^{−kn/m})^k` for a filter of
/// `m` bits holding `n` items under `k` hashes.
///
/// Returns 0 for an empty filter and 1 for a degenerate zero-bit geometry.
#[must_use]
pub fn standard_fpp(m: usize, n: usize, k: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if m == 0 {
        return 1.0;
    }
    let exponent = -(f64::from(k) * n as f64) / m as f64;
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Optimal false-positive probability `0.6185^{m/n}` achieved at the optimal
/// hash count. This is the `f₀` of Equation (1).
#[must_use]
pub fn optimal_fpp(bits_per_item: f64) -> f64 {
    if bits_per_item <= 0.0 {
        return 1.0;
    }
    OPTIMAL_BASE.powf(bits_per_item)
}

/// Equation (1) of the paper: the probability that a segment Bloom filter
/// array holding `theta` replicas produces a **false unique hit** — exactly
/// one replica answers positively, and wrongly:
///
/// `f⁺_g = θ · f₀ · (1 − f₀)^{θ−1}`
/// with `f₀ = 0.6185^{m/n}`.
///
/// Returns 0 when `theta == 0` (an empty array can produce no hit at all).
#[must_use]
pub fn segment_false_hit(theta: usize, bits_per_item: f64) -> f64 {
    if theta == 0 {
        return 0.0;
    }
    let f0 = optimal_fpp(bits_per_item);
    theta as f64 * f0 * (1.0 - f0).powi(theta as i32 - 1)
}

/// Probability that **zero or multiple** false positives occur across an
/// array of `theta` independent filters, i.e. the complement of exactly-one.
/// Useful when modelling multi-hit escalation penalties.
#[must_use]
pub fn array_ambiguity(theta: usize, bits_per_item: f64) -> f64 {
    if theta == 0 {
        return 0.0;
    }
    let f0 = optimal_fpp(bits_per_item);
    let none = (1.0 - f0).powi(theta as i32);
    let exactly_one = segment_false_hit(theta, bits_per_item);
    // P(at least one) − P(exactly one) = P(two or more); ambiguity also
    // includes multi-hit caused by the true home plus one false positive,
    // but for a pure-noise array this is the base rate.
    (1.0 - none - exactly_one).max(0.0)
}

/// False-positive probability of the union filter `BF(A) | BF(B)` when `A`
/// has `n_a` items, `B` has `n_b`, both in `m` bits with `k` hashes.
///
/// The union behaves like a single filter holding `n_a + n_b` items (an
/// upper bound that the paper's Property 1 discussion uses: the union's
/// false rate exceeds either operand's).
#[must_use]
pub fn union_fpp(m: usize, n_a: usize, n_b: usize, k: u32) -> f64 {
    standard_fpp(m, n_a + n_b, k)
}

/// The §3.4 tightness statement for intersections: the probability that the
/// bitwise-AND filter is *strictly looser* than the true `BF(A ∩ B)`,
/// `(1 − (1 − 1/m)^{k·|A−A∩B|}) · (1 − (1 − 1/m)^{k·|B−A∩B|})`.
///
/// `a_only` and `b_only` are `|A − (A∩B)|` and `|B − (A∩B)|`.
#[must_use]
pub fn intersection_tightness(m: usize, k: u32, a_only: usize, b_only: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let base = 1.0 - 1.0 / m as f64;
    let p_a = 1.0 - base.powf(f64::from(k) * a_only as f64);
    let p_b = 1.0 - base.powf(f64::from(k) * b_only as f64);
    p_a * p_b
}

/// False-rate inflation caused by staleness: with `d` of the `m` bits of a
/// replica out of date (the XOR distance to the live filter), missing
/// updates inflate both false positives (stale 1-bits) and false negatives
/// (missing 1-bits).
///
/// This simple symmetric model splits the stale bits evenly and reports
/// `(false_positive_boost, false_negative_prob)` for a `k`-hash probe, in
/// the spirit of the authors' companion analysis (Zhu & Jiang, ICPP'06).
#[must_use]
pub fn staleness_rates(m: usize, k: u32, stale_bits: usize) -> (f64, f64) {
    if m == 0 || stale_bits == 0 {
        return (0.0, 0.0);
    }
    let half = stale_bits as f64 / 2.0;
    let p_bit_stale_set = (half / m as f64).min(1.0);
    // A query for an absent item goes all-k into stale-set bits with
    // probability ≈ (fraction)^k — tiny; the dominant term is one stale bit
    // completing an otherwise (k−1)-matching probe. We report the one-probe
    // approximation.
    let fp_boost = 1.0 - (1.0 - p_bit_stale_set).powi(k as i32);
    // A present item is missed if any of its k bits is stale-clear.
    let fn_prob = 1.0 - (1.0 - p_bit_stale_set).powi(k as i32);
    (fp_boost, fn_prob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_hash_count_known_values() {
        assert_eq!(optimal_hash_count(8.0), 6); // 5.545 → 6
        assert_eq!(optimal_hash_count(10.0), 7); // 6.931 → 7
        assert_eq!(optimal_hash_count(16.0), 11); // 11.09 → 11
        assert_eq!(optimal_hash_count(1.0), 1); // 0.693 → 1 (floor at 1)
        assert_eq!(optimal_hash_count(0.1), 1);
    }

    #[test]
    fn standard_fpp_matches_textbook_point() {
        // m/n = 8, k = 6: (1 − e^{−6/8})^6 ≈ 0.0216
        let fpp = standard_fpp(8_000, 1_000, 6);
        assert!((fpp - 0.0216).abs() < 0.001, "got {fpp}");
    }

    #[test]
    fn standard_fpp_edges() {
        assert_eq!(standard_fpp(100, 0, 4), 0.0);
        assert_eq!(standard_fpp(0, 10, 4), 1.0);
        assert!(standard_fpp(8, 1_000_000, 4) > 0.999);
    }

    #[test]
    fn optimal_fpp_is_lower_bound_of_standard() {
        for bits_per_item in [4.0, 8.0, 12.0, 16.0] {
            let k = optimal_hash_count(bits_per_item);
            let n = 10_000usize;
            let m = (n as f64 * bits_per_item) as usize;
            let std = standard_fpp(m, n, k);
            let opt = optimal_fpp(bits_per_item);
            // Standard with rounded-k is ≥ the ideal real-k optimum (small
            // tolerance for the rounding of k).
            assert!(std >= opt * 0.85, "std {std} vs opt {opt}");
        }
    }

    #[test]
    fn optimal_fpp_8_bits_is_about_2_percent() {
        let f = optimal_fpp(8.0);
        assert!((f - 0.0216).abs() < 0.002, "got {f}");
    }

    #[test]
    fn segment_false_hit_eq1_shape() {
        // f+g grows with θ for small θ (more chances of a lone false hit)…
        let small = segment_false_hit(1, 16.0);
        let larger = segment_false_hit(8, 16.0);
        assert!(larger > small);
        // …but the (1−f0)^{θ−1} term eventually wins when f0 is large.
        let f_peak = segment_false_hit(40, 2.0);
        let f_past = segment_false_hit(400, 2.0);
        assert!(f_past < f_peak);
    }

    #[test]
    fn segment_false_hit_zero_theta() {
        assert_eq!(segment_false_hit(0, 8.0), 0.0);
    }

    #[test]
    fn increasing_bits_per_item_reduces_false_hits() {
        let loose = segment_false_hit(10, 8.0);
        let tight = segment_false_hit(10, 16.0);
        assert!(tight < loose);
    }

    #[test]
    fn union_fpp_exceeds_each_operand() {
        let m = 10_000;
        let k = 5;
        let both = union_fpp(m, 500, 700, k);
        assert!(both >= standard_fpp(m, 500, k));
        assert!(both >= standard_fpp(m, 700, k));
    }

    #[test]
    fn intersection_tightness_monotone_in_disjoint_parts() {
        let low = intersection_tightness(10_000, 5, 10, 10);
        let high = intersection_tightness(10_000, 5, 1_000, 1_000);
        assert!(high > low);
        assert_eq!(intersection_tightness(10_000, 5, 0, 10), 0.0);
    }

    #[test]
    fn staleness_rates_zero_when_fresh() {
        assert_eq!(staleness_rates(1_000, 5, 0), (0.0, 0.0));
    }

    #[test]
    fn staleness_rates_grow_with_drift() {
        let (fp1, fn1) = staleness_rates(10_000, 5, 10);
        let (fp2, fn2) = staleness_rates(10_000, 5, 1_000);
        assert!(fp2 > fp1);
        assert!(fn2 > fn1);
        assert!(fp2 <= 1.0 && fn2 <= 1.0);
    }

    #[test]
    fn array_ambiguity_bounded() {
        for theta in [1usize, 5, 20, 100] {
            for bpi in [2.0, 8.0, 16.0] {
                let p = array_ambiguity(theta, bpi);
                assert!((0.0..=1.0).contains(&p), "theta={theta} bpi={bpi} p={p}");
            }
        }
        assert_eq!(array_ambiguity(0, 8.0), 0.0);
    }
}
