//! Bloom filter arrays — the per-MDS collection of replicas queried as one.
//!
//! Both HBA and G-HBA answer "which MDS is home to file *p*?" by probing an
//! *array* of filters, one per candidate server, and looking for a **unique**
//! positive. Zero or multiple positives are a miss that escalates to the
//! next level of the query hierarchy.
//!
//! Two array structures share the [`Hit`] classification:
//!
//! * [`BloomFilterArray`] (this module) — the general, compatibility
//!   structure: an ordered list of independent [`BloomFilter`]s that may
//!   differ in shape and seed. Queries are **hash-once**: the item is
//!   digested into a [`Fingerprint`] a single time and each filter's probe
//!   stream is derived by O(1) seed-mixing, but the walk still visits `N`
//!   separate bit vectors.
//! * [`crate::SharedShapeArray`] — the hot-path structure used when all
//!   filters share one [`crate::FilterShape`] (the common case: every MDS
//!   publishes the same geometry). Its bit-sliced layout turns the same
//!   query into `k` word-row loads plus an AND-reduction, independent of
//!   `N`. Both structures answer identically for identical inserts; prefer
//!   the shared-shape array on hot paths and keep this one for mixed-shape
//!   collections and incremental migration.

use std::hash::Hash;

use crate::error::BloomError;
use crate::filter::BloomFilter;
use crate::hash::Fingerprint;

/// Outcome of probing a [`BloomFilterArray`]: how many filters answered
/// positively.
///
/// Per §2.1 of the paper, only [`Hit::Unique`] counts as a success; both
/// [`Hit::None`] and [`Hit::Multiple`] escalate the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hit<I> {
    /// No filter matched; the item is definitely not represented here.
    None,
    /// Exactly one filter matched — the candidate home server.
    Unique(I),
    /// Two or more filters matched; ambiguous, must escalate.
    Multiple(Vec<I>),
}

impl<I> Hit<I> {
    /// `true` for [`Hit::Unique`].
    #[must_use]
    pub fn is_unique(&self) -> bool {
        matches!(self, Hit::Unique(_))
    }

    /// The unique candidate, if any.
    #[must_use]
    pub fn unique(&self) -> Option<&I> {
        match self {
            Hit::Unique(id) => Some(id),
            _ => None,
        }
    }

    /// All positive candidates (empty for [`Hit::None`]).
    #[must_use]
    pub fn candidates(&self) -> &[I] {
        match self {
            Hit::None => &[],
            Hit::Unique(id) => std::slice::from_ref(id),
            Hit::Multiple(ids) => ids,
        }
    }
}

/// An ordered collection of `(id, filter)` pairs probed together.
///
/// `I` identifies the server a filter summarizes (an `MdsId` upstream). The
/// array preserves insertion order, rejects duplicate ids, and reports
/// aggregate memory usage — the quantity that decides when a real deployment
/// starts spilling replicas to disk (Figures 8–10 of the paper).
///
/// # Examples
///
/// ```
/// use ghba_bloom::{BloomFilter, BloomFilterArray, Hit};
///
/// let mut home_of_x = BloomFilter::new(1024, 4, 0);
/// home_of_x.insert("x");
/// let mut array = BloomFilterArray::new();
/// array.push(7u32, home_of_x)?;
/// array.push(9u32, BloomFilter::new(1024, 4, 0))?;
/// assert_eq!(array.query("x"), Hit::Unique(7));
/// # Ok::<(), ghba_bloom::BloomError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BloomFilterArray<I> {
    entries: Vec<(I, BloomFilter)>,
}

impl<I: Copy + Eq> BloomFilterArray<I> {
    /// Creates an empty array.
    #[must_use]
    pub fn new() -> Self {
        BloomFilterArray {
            entries: Vec::new(),
        }
    }

    /// Number of filters held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the array holds no filters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a filter for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::DuplicateId`] if `id` is already present.
    pub fn push(&mut self, id: I, filter: BloomFilter) -> Result<(), BloomError> {
        if self.contains_id(id) {
            return Err(BloomError::DuplicateId);
        }
        self.entries.push((id, filter));
        Ok(())
    }

    /// Replaces the filter for `id`, returning the old one.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::UnknownId`] if `id` is absent.
    pub fn replace(&mut self, id: I, filter: BloomFilter) -> Result<BloomFilter, BloomError> {
        match self.entries.iter_mut().find(|(eid, _)| *eid == id) {
            Some((_, slot)) => Ok(std::mem::replace(slot, filter)),
            None => Err(BloomError::UnknownId),
        }
    }

    /// Removes and returns the filter for `id`, if present.
    pub fn remove(&mut self, id: I) -> Option<BloomFilter> {
        let pos = self.entries.iter().position(|(eid, _)| *eid == id)?;
        Some(self.entries.remove(pos).1)
    }

    /// `true` if a filter for `id` is held.
    #[must_use]
    pub fn contains_id(&self, id: I) -> bool {
        self.entries.iter().any(|(eid, _)| *eid == id)
    }

    /// Borrow the filter for `id`.
    #[must_use]
    pub fn get(&self, id: I) -> Option<&BloomFilter> {
        self.entries
            .iter()
            .find(|(eid, _)| *eid == id)
            .map(|(_, f)| f)
    }

    /// Mutably borrow the filter for `id`.
    pub fn get_mut(&mut self, id: I) -> Option<&mut BloomFilter> {
        self.entries
            .iter_mut()
            .find(|(eid, _)| *eid == id)
            .map(|(_, f)| f)
    }

    /// Iterator over `(id, filter)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &BloomFilter)> {
        self.entries.iter().map(|(id, f)| (*id, f))
    }

    /// Iterator over the held ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        self.entries.iter().map(|(id, _)| *id)
    }

    /// Probes every filter with `item` and classifies the positives.
    ///
    /// The item is hashed once; see [`query_fp`](BloomFilterArray::query_fp)
    /// to reuse a fingerprint computed upstream (e.g. across the L1 → L4
    /// escalation of a lookup).
    #[must_use]
    pub fn query<T: Hash + ?Sized>(&self, item: &T) -> Hit<I> {
        self.query_fp(&Fingerprint::of(item))
    }

    /// Hash-once probe: derives each filter's probe stream from `fp` by
    /// seed-mixing, never re-hashing the item bytes. Answers identically to
    /// [`query`](BloomFilterArray::query) for the fingerprinted item.
    #[must_use]
    pub fn query_fp(&self, fp: &Fingerprint) -> Hit<I> {
        let mut positives: Vec<I> = Vec::new();
        for (id, filter) in &self.entries {
            if filter.contains_fp(fp) {
                positives.push(*id);
            }
        }
        match positives.len() {
            0 => Hit::None,
            1 => Hit::Unique(positives[0]),
            _ => Hit::Multiple(positives),
        }
    }

    /// Total heap footprint of all held filters in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.entries.iter().map(|(_, f)| f.memory_bytes()).sum()
    }

    /// Drains the array into its `(id, filter)` pairs.
    #[must_use]
    pub fn into_entries(self) -> Vec<(I, BloomFilter)> {
        self.entries
    }
}

impl<I: Copy + Eq> FromIterator<(I, BloomFilter)> for BloomFilterArray<I> {
    /// Builds an array from pairs; later duplicates of an id are dropped.
    fn from_iter<T: IntoIterator<Item = (I, BloomFilter)>>(iter: T) -> Self {
        let mut array = BloomFilterArray::new();
        for (id, filter) in iter {
            let _ = array.push(id, filter);
        }
        array
    }
}

impl<I: Copy + Eq> Extend<(I, BloomFilter)> for BloomFilterArray<I> {
    fn extend<T: IntoIterator<Item = (I, BloomFilter)>>(&mut self, iter: T) {
        for (id, filter) in iter {
            let _ = self.push(id, filter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(items: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::new(4096, 5, 11);
        for item in items {
            f.insert(item);
        }
        f
    }

    #[test]
    fn unique_hit_names_the_home() {
        let mut array = BloomFilterArray::new();
        array.push(1u32, filter_with(&["a", "b"])).unwrap();
        array.push(2u32, filter_with(&["c"])).unwrap();
        assert_eq!(array.query("c"), Hit::Unique(2));
        assert_eq!(array.query("a"), Hit::Unique(1));
    }

    #[test]
    fn zero_hit_when_absent() {
        let mut array = BloomFilterArray::new();
        array.push(1u32, filter_with(&["a"])).unwrap();
        assert_eq!(array.query("nothing-here"), Hit::None);
    }

    #[test]
    fn multiple_hits_reported() {
        let mut array = BloomFilterArray::new();
        array.push(1u32, filter_with(&["dup"])).unwrap();
        array.push(2u32, filter_with(&["dup"])).unwrap();
        match array.query("dup") {
            Hit::Multiple(ids) => assert_eq!(ids, vec![1, 2]),
            other => panic!("expected multiple, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut array = BloomFilterArray::new();
        array.push(1u32, filter_with(&[])).unwrap();
        assert_eq!(
            array.push(1u32, filter_with(&[])),
            Err(BloomError::DuplicateId)
        );
    }

    #[test]
    fn replace_swaps_filter() {
        let mut array = BloomFilterArray::new();
        array.push(1u32, filter_with(&["old"])).unwrap();
        let old = array.replace(1, filter_with(&["new"])).unwrap();
        assert!(old.contains("old"));
        assert_eq!(array.query("new"), Hit::Unique(1));
        assert!(array.replace(99, filter_with(&[])).is_err());
    }

    #[test]
    fn remove_returns_filter() {
        let mut array = BloomFilterArray::new();
        array.push(5u32, filter_with(&["z"])).unwrap();
        let f = array.remove(5).unwrap();
        assert!(f.contains("z"));
        assert!(array.is_empty());
        assert!(array.remove(5).is_none());
    }

    #[test]
    fn hit_candidates_accessor() {
        let hit = Hit::Multiple(vec![1u32, 2]);
        assert_eq!(hit.candidates(), &[1, 2]);
        assert!(Hit::<u32>::None.candidates().is_empty());
        assert_eq!(Hit::Unique(9u32).candidates(), &[9]);
        assert_eq!(Hit::Unique(9u32).unique(), Some(&9));
        assert!(Hit::Unique(9u32).is_unique());
    }

    #[test]
    fn memory_sums_over_entries() {
        let mut array = BloomFilterArray::new();
        array.push(1u32, BloomFilter::new(64, 1, 0)).unwrap();
        array.push(2u32, BloomFilter::new(128, 1, 0)).unwrap();
        assert_eq!(array.memory_bytes(), 8 + 16);
    }

    #[test]
    fn from_iterator_drops_duplicate_ids() {
        let array: BloomFilterArray<u32> =
            vec![(1, filter_with(&["first"])), (1, filter_with(&["second"]))]
                .into_iter()
                .collect();
        assert_eq!(array.len(), 1);
        assert_eq!(array.query("first"), Hit::Unique(1));
    }
}
