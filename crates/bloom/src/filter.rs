//! The plain (bit-vector) Bloom filter.
//!
//! This is the workhorse structure replicated between metadata servers in
//! both HBA and G-HBA: each MDS summarizes the set of files whose metadata it
//! stores into one `BloomFilter` and ships that filter to its peers.

use std::hash::Hash;

use crate::analysis;
use crate::error::{BloomError, FilterShape};
use crate::hash::{probe_indices, Fingerprint};

/// A space-efficient probabilistic set membership structure.
///
/// Guarantees **no false negatives** for items inserted since the last
/// [`clear`](BloomFilter::clear); false positives occur with a probability
/// controlled by the bits-per-item ratio (see [`analysis`]).
///
/// Two filters are *compatible* (and may be combined with
/// [`union_assign`](BloomFilter::union_assign) and friends) iff they share
/// the same length, hash count, and hash seed — see [`FilterShape`].
///
/// # Examples
///
/// ```
/// use ghba_bloom::BloomFilter;
///
/// let mut filter = BloomFilter::for_items(1_000, 8.0);
/// filter.insert("home/alice/report.txt");
/// assert!(filter.contains("home/alice/report.txt"));
/// assert!(!filter.contains("home/bob/absent.txt") || filter.estimated_fpp() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    bits: usize,
    hashes: u32,
    seed: u64,
    items: usize,
}

const MAGIC: &[u8; 4] = b"GBF1";

impl BloomFilter {
    /// Creates an empty filter with exactly `bits` bits and `hashes` hash
    /// functions, keyed by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0` or `hashes == 0`.
    #[must_use]
    pub fn new(bits: usize, hashes: u32, seed: u64) -> Self {
        assert!(bits > 0, "filter must have at least one bit");
        assert!(hashes > 0, "filter must use at least one hash");
        BloomFilter {
            words: vec![0; bits.div_ceil(64)],
            bits,
            hashes,
            seed,
            items: 0,
        }
    }

    /// Creates a filter sized for `expected_items` at `bits_per_item` (the
    /// paper's *m/n* ratio), with the optimal hash count
    /// `k = (m/n)·ln 2` rounded to the nearest positive integer.
    ///
    /// The default seed is 0; use [`with_seed`](BloomFilter::with_seed) for
    /// families that must probe independently.
    ///
    /// # Panics
    ///
    /// Panics if `expected_items == 0` or `bits_per_item <= 0.0`.
    #[must_use]
    pub fn for_items(expected_items: usize, bits_per_item: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            bits_per_item > 0.0 && bits_per_item.is_finite(),
            "bits_per_item must be positive and finite"
        );
        let bits = ((expected_items as f64) * bits_per_item).ceil().max(64.0) as usize;
        let hashes = analysis::optimal_hash_count(bits_per_item);
        BloomFilter::new(bits, hashes, 0)
    }

    /// Returns `self` re-keyed with `seed` (builder-style).
    ///
    /// Only valid on an empty filter: re-keying after inserts would silently
    /// lose membership.
    ///
    /// # Panics
    ///
    /// Panics if any item has already been inserted.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        assert!(
            self.items == 0,
            "cannot re-seed a filter that already holds items"
        );
        self.seed = seed;
        self
    }

    /// The shape triple that governs compatibility.
    #[must_use]
    pub fn shape(&self) -> FilterShape {
        FilterShape {
            bits: self.bits,
            hashes: self.hashes,
            seed: self.seed,
        }
    }

    /// Number of bits `m`.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bits
    }

    /// Number of hash functions `k`.
    #[must_use]
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }

    /// Hash-family seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of items inserted since creation or the last clear.
    ///
    /// This is bookkeeping, not a property of the bit vector: union and
    /// delta application update it additively as an upper bound.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.items
    }

    /// `true` if no item has been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items == 0 && self.words.iter().all(|&w| w == 0)
    }

    /// Heap footprint of the bit vector in bytes (what an MDS "pays" to hold
    /// a replica — the quantity Table 5 of the paper normalizes).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Inserts `item`. Never fails; duplicate inserts are idempotent on the
    /// bit vector but still counted in [`item_count`](BloomFilter::item_count).
    pub fn insert<T: Hash + ?Sized>(&mut self, item: &T) {
        self.insert_fp(&Fingerprint::of(item));
    }

    /// Hash-once variant of [`insert`](BloomFilter::insert): consumes a
    /// precomputed [`Fingerprint`] instead of re-hashing the item bytes.
    pub fn insert_fp(&mut self, fp: &Fingerprint) {
        for idx in fp.probes(self.seed, self.bits, self.hashes) {
            self.words[idx / 64] |= 1 << (idx % 64);
        }
        self.items += 1;
    }

    /// Probabilistic membership test: `false` means *definitely absent*,
    /// `true` means *probably present*.
    #[must_use]
    pub fn contains<T: Hash + ?Sized>(&self, item: &T) -> bool {
        probe_indices(item, self.seed, self.bits, self.hashes)
            .all(|idx| self.words[idx / 64] >> (idx % 64) & 1 == 1)
    }

    /// Hash-once variant of [`contains`](BloomFilter::contains); answers
    /// identically to `contains` for the item the fingerprint digests.
    #[must_use]
    pub fn contains_fp(&self, fp: &Fingerprint) -> bool {
        fp.probes(self.seed, self.bits, self.hashes)
            .all(|idx| self.words[idx / 64] >> (idx % 64) & 1 == 1)
    }

    /// Resets the filter to empty, keeping its shape.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.items = 0;
    }

    /// Number of set bits.
    #[must_use]
    pub fn ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits set, in `[0, 1]`.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        self.ones() as f64 / self.bits as f64
    }

    /// Estimated false-positive probability from the *observed* fill ratio:
    /// `(ones/m)^k`. Unlike [`theoretical_fpp`](BloomFilter::theoretical_fpp)
    /// this needs no item count and reflects unions and deltas.
    #[must_use]
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.hashes as i32)
    }

    /// Textbook false-positive probability for `n` items:
    /// `(1 − e^{−kn/m})^k` (Broder & Mitzenmacher).
    #[must_use]
    pub fn theoretical_fpp(&self, n: usize) -> f64 {
        analysis::standard_fpp(self.bits, n, self.hashes)
    }

    fn check_compatible(&self, other: &BloomFilter) -> Result<(), BloomError> {
        if self.shape() == other.shape() {
            Ok(())
        } else {
            Err(BloomError::IncompatibleFilters {
                left: self.shape(),
                right: other.shape(),
            })
        }
    }

    /// In-place union (Property 1 of the paper: `BF(A∪B) = BF(A) | BF(B)`).
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
    pub fn union_assign(&mut self, other: &BloomFilter) -> Result<(), BloomError> {
        self.check_compatible(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.items += other.items;
        Ok(())
    }

    /// In-place intersection (Property 2: `BF(A∩B) ⊆ BF(A) & BF(B)`).
    ///
    /// The result over-approximates the intersection of the underlying sets;
    /// see [`analysis::intersection_tightness`] for the error bound.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
    pub fn intersect_assign(&mut self, other: &BloomFilter) -> Result<(), BloomError> {
        self.check_compatible(other)?;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.items = self.items.min(other.items);
        Ok(())
    }

    /// Number of bit positions where the two filters differ (Hamming
    /// distance of the bit vectors).
    ///
    /// G-HBA's update protocol (§3.4) pushes a replica refresh when this
    /// distance between the live filter and the replicated snapshot crosses
    /// a threshold.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::IncompatibleFilters`] when shapes differ.
    pub fn xor_distance(&self, other: &BloomFilter) -> Result<usize, BloomError> {
        self.check_compatible(other)?;
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Serializes the filter into a self-describing byte string.
    ///
    /// Layout: magic `GBF1` · `bits: u64 LE` · `hashes: u32 LE` ·
    /// `seed: u64 LE` · `items: u64 LE` · words (`u64 LE` each).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + 4 + 8 + 8 + self.words.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.bits as u64).to_le_bytes());
        out.extend_from_slice(&self.hashes.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.items as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes a filter from [`to_bytes`](BloomFilter::to_bytes) output.
    ///
    /// # Errors
    ///
    /// Returns [`BloomError::Corrupt`] on bad magic, truncation, trailing
    /// bytes, or inconsistent header fields.
    pub fn from_bytes(data: &[u8]) -> Result<Self, BloomError> {
        const HEADER: usize = 4 + 8 + 4 + 8 + 8;
        if data.len() < HEADER {
            return Err(BloomError::Corrupt("truncated header"));
        }
        if &data[..4] != MAGIC {
            return Err(BloomError::Corrupt("bad magic"));
        }
        let bits = u64::from_le_bytes(data[4..12].try_into().expect("sized")) as usize;
        let hashes = u32::from_le_bytes(data[12..16].try_into().expect("sized"));
        let seed = u64::from_le_bytes(data[16..24].try_into().expect("sized"));
        let items = u64::from_le_bytes(data[24..32].try_into().expect("sized")) as usize;
        if bits == 0 || hashes == 0 {
            return Err(BloomError::Corrupt("zero-sized geometry"));
        }
        let expected_words = bits.div_ceil(64);
        let body = &data[HEADER..];
        if body.len() != expected_words * 8 {
            return Err(BloomError::Corrupt("body length mismatch"));
        }
        let words = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("sized")))
            .collect();
        Ok(BloomFilter {
            words,
            bits,
            hashes,
            seed,
            items,
        })
    }

    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    pub(crate) fn words_mut(&mut self) -> &mut Vec<u64> {
        &mut self.words
    }

    pub(crate) fn set_items(&mut self, n: usize) {
        self.items = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_filter() -> BloomFilter {
        let mut f = BloomFilter::new(4096, 5, 42);
        for i in 0..100u32 {
            f.insert(&format!("file-{i}"));
        }
        f
    }

    #[test]
    fn no_false_negatives() {
        let f = sample_filter();
        for i in 0..100u32 {
            assert!(f.contains(&format!("file-{i}")));
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 4, 0);
        assert!(f.is_empty());
        assert!(!f.contains("anything"));
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn for_items_uses_optimal_k() {
        let f = BloomFilter::for_items(1000, 8.0);
        // k = 8 ln 2 ≈ 5.55 → 6
        assert_eq!(f.hash_count(), 6);
        assert!(f.bit_len() >= 8000);
    }

    #[test]
    fn fpp_is_low_at_8_bits_per_item() {
        let mut f = BloomFilter::for_items(10_000, 8.0);
        for i in 0..10_000u32 {
            f.insert(&i);
        }
        // Theoretical optimum at 8 bits/item is ~2.1 %; allow 2x slack.
        let false_hits = (10_000u32..60_000).filter(|i| f.contains(i)).count();
        let rate = false_hits as f64 / 50_000.0;
        assert!(rate < 0.045, "false positive rate {rate} too high");
    }

    #[test]
    fn clear_resets() {
        let mut f = sample_filter();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.item_count(), 0);
        assert!(!f.contains("file-0"));
    }

    #[test]
    fn union_covers_both_sets() {
        let mut a = BloomFilter::new(2048, 4, 7);
        let mut b = BloomFilter::new(2048, 4, 7);
        a.insert("alpha");
        b.insert("beta");
        a.union_assign(&b).unwrap();
        assert!(a.contains("alpha"));
        assert!(a.contains("beta"));
        assert_eq!(a.item_count(), 2);
    }

    #[test]
    fn union_rejects_mismatched_seed() {
        let mut a = BloomFilter::new(2048, 4, 7);
        let b = BloomFilter::new(2048, 4, 8);
        assert!(matches!(
            a.union_assign(&b),
            Err(BloomError::IncompatibleFilters { .. })
        ));
    }

    #[test]
    fn intersect_keeps_common_items() {
        let mut a = BloomFilter::new(4096, 4, 7);
        let mut b = BloomFilter::new(4096, 4, 7);
        for item in ["x", "y", "shared"] {
            a.insert(item);
        }
        for item in ["p", "q", "shared"] {
            b.insert(item);
        }
        a.intersect_assign(&b).unwrap();
        assert!(a.contains("shared"));
    }

    #[test]
    fn xor_distance_zero_iff_identical() {
        let a = sample_filter();
        let b = sample_filter();
        assert_eq!(a.xor_distance(&b).unwrap(), 0);

        let mut c = sample_filter();
        c.insert("one-more-file");
        assert!(a.xor_distance(&c).unwrap() > 0);
    }

    #[test]
    fn xor_distance_is_symmetric() {
        let a = sample_filter();
        let mut c = sample_filter();
        c.insert("delta");
        assert_eq!(a.xor_distance(&c).unwrap(), c.xor_distance(&a).unwrap());
    }

    #[test]
    fn roundtrip_bytes() {
        let f = sample_filter();
        let decoded = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f, decoded);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BloomFilter::from_bytes(b"nope").is_err());
        let mut bytes = sample_filter().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            BloomFilter::from_bytes(&bytes),
            Err(BloomError::Corrupt("bad magic"))
        ));
        let mut truncated = sample_filter().to_bytes();
        truncated.pop();
        assert!(BloomFilter::from_bytes(&truncated).is_err());
    }

    #[test]
    fn memory_bytes_matches_geometry() {
        let f = BloomFilter::new(1_000_000, 6, 0);
        assert_eq!(f.memory_bytes(), 1_000_000_usize.div_ceil(64) * 8);
    }

    #[test]
    #[should_panic(expected = "re-seed")]
    fn with_seed_after_insert_panics() {
        let mut f = BloomFilter::new(64, 2, 0);
        f.insert("x");
        let _ = f.with_seed(9);
    }

    #[test]
    fn estimated_fpp_tracks_fill() {
        let mut f = BloomFilter::new(1024, 4, 3);
        assert_eq!(f.estimated_fpp(), 0.0);
        for i in 0..200u32 {
            f.insert(&i);
        }
        assert!(f.estimated_fpp() > 0.0);
        assert!(f.estimated_fpp() < 1.0);
    }
}
