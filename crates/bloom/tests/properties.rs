//! Property-based tests for the Bloom filter toolkit.

use ghba_bloom::{
    analysis, hash, ops, BloomFilter, BloomFilterArray, CompactCountingBloomFilter,
    CountingBloomFilter, FilterDelta, Fingerprint, Hit, LruBloomArray, SharedShapeArray,
};
use proptest::prelude::*;

fn arb_items() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z/]{1,24}", 0..200)
}

proptest! {
    /// Fundamental Bloom filter guarantee: anything inserted tests positive.
    #[test]
    fn no_false_negatives(items in arb_items(), seed in any::<u64>()) {
        let mut f = BloomFilter::new(8192, 5, seed);
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            prop_assert!(f.contains(item));
        }
    }

    /// Union covers the membership of both operands (Property 1).
    #[test]
    fn union_covers_both(a_items in arb_items(), b_items in arb_items(), seed in any::<u64>()) {
        let mut a = BloomFilter::new(8192, 5, seed);
        let mut b = BloomFilter::new(8192, 5, seed);
        for item in &a_items { a.insert(item); }
        for item in &b_items { b.insert(item); }
        let u = ops::union(&a, &b).unwrap();
        for item in a_items.iter().chain(&b_items) {
            prop_assert!(u.contains(item));
        }
    }

    /// Intersection (bitwise AND) keeps everything present in both sets
    /// (Property 2: it over-approximates BF(A ∩ B)).
    #[test]
    fn intersection_keeps_common(common in arb_items(), seed in any::<u64>()) {
        let mut a = BloomFilter::new(8192, 5, seed);
        let mut b = BloomFilter::new(8192, 5, seed);
        for item in &common { a.insert(item); b.insert(item); }
        a.insert("only-in-a");
        b.insert("only-in-b");
        let i = ops::intersect(&a, &b).unwrap();
        for item in &common {
            prop_assert!(i.contains(item));
        }
    }

    /// XOR distance is a metric-ish: zero iff identical bit vectors,
    /// symmetric, and equals the popcount of the symmetric difference.
    #[test]
    fn xor_distance_consistency(a_items in arb_items(), b_items in arb_items()) {
        let mut a = BloomFilter::new(4096, 4, 9);
        let mut b = BloomFilter::new(4096, 4, 9);
        for item in &a_items { a.insert(item); }
        for item in &b_items { b.insert(item); }
        let d_ab = a.xor_distance(&b).unwrap();
        let d_ba = b.xor_distance(&a).unwrap();
        prop_assert_eq!(d_ab, d_ba);
        let sym = ops::symmetric_difference(&a, &b).unwrap();
        prop_assert_eq!(sym.ones(), d_ab);
        prop_assert_eq!(a.xor_distance(&a).unwrap(), 0);
    }

    /// Deltas reconstruct the target filter exactly, regardless of churn.
    #[test]
    fn delta_reconstructs(base in arb_items(), extra in arb_items()) {
        let mut old = BloomFilter::new(4096, 4, 2);
        for item in &base { old.insert(item); }
        let mut new = old.clone();
        for item in &extra { new.insert(item); }
        let delta = FilterDelta::between(&old, &new).unwrap();
        let mut replica = old.clone();
        delta.apply(&mut replica).unwrap();
        prop_assert_eq!(replica, new);
    }

    /// Counting filters: inserting then removing every item restores
    /// definite absence for items inserted exactly once, as long as no
    /// counter saturates.
    #[test]
    fn counting_roundtrip(items in proptest::collection::hash_set("[a-z]{1,16}", 0..100)) {
        let mut f = CountingBloomFilter::new(16_384, 5, 3);
        for item in &items { f.insert(item); }
        prop_assume!(f.max_counter() < u8::MAX);
        for item in &items {
            f.remove(item).unwrap();
        }
        prop_assert!(f.is_empty());
        prop_assert_eq!(f.ones(), 0);
    }

    /// Serialization roundtrips exactly.
    #[test]
    fn serialization_roundtrip(items in arb_items(), seed in any::<u64>()) {
        let mut f = BloomFilter::new(2048, 3, seed);
        for item in &items { f.insert(item); }
        let decoded = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        prop_assert_eq!(f, decoded);
    }

    /// Arbitrary byte strings never panic the decoder.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = BloomFilter::from_bytes(&bytes);
    }

    /// Filter arrays: an inserted file's home is always among the
    /// candidates (no false negatives at array level).
    #[test]
    fn array_home_is_always_candidate(
        items in proptest::collection::vec(("[a-z]{1,12}", 0u16..8), 1..100),
    ) {
        let mut array: BloomFilterArray<u16> = (0u16..8)
            .map(|id| (id, BloomFilter::new(8192, 5, 77)))
            .collect();
        for (item, home) in &items {
            array.get_mut(*home).unwrap().insert(item);
        }
        for (item, home) in &items {
            let hit = array.query(item);
            prop_assert!(
                hit.candidates().contains(home),
                "home {home} missing from {hit:?} for {item}"
            );
        }
    }

    /// LRU array: the most recent `capacity` distinct items are always
    /// resident and their true home is among the candidates.
    #[test]
    fn lru_retains_recent(
        accesses in proptest::collection::vec((0u32..64, 0u16..4), 1..300),
        cap in 1usize..32,
    ) {
        let mut lru = LruBloomArray::new(cap, 8192, 5, 13);
        let mut last_home = std::collections::HashMap::new();
        for (file, home) in &accesses {
            lru.record(file, *home);
            last_home.insert(*file, *home);
        }
        prop_assert!(lru.len() <= cap);
        // Determine the `cap` most recently used distinct files.
        let mut seen = std::collections::HashSet::new();
        let mut recent = Vec::new();
        for (file, _) in accesses.iter().rev() {
            if seen.insert(*file) {
                recent.push(*file);
                if recent.len() == cap { break; }
            }
        }
        for file in recent {
            let hit = lru.query(&file);
            let home = last_home[&file];
            prop_assert!(
                hit.candidates().contains(&home),
                "recent file {file} lost its home {home}: {hit:?}"
            );
        }
    }

    /// Eq. (1) stays a probability for all sensible parameters.
    #[test]
    fn eq1_is_probability(theta in 0usize..500, bpi in 0.5f64..64.0) {
        let p = analysis::segment_false_hit(theta, bpi);
        prop_assert!((0.0..=1.0).contains(&p), "theta={theta} bpi={bpi} p={p}");
    }

    /// The standard false-positive formula is monotone: more items in the
    /// same geometry can only raise the false rate.
    #[test]
    fn fpp_monotone_in_items(m in 64usize..100_000, n in 0usize..10_000, k in 1u32..12) {
        let f_small = analysis::standard_fpp(m, n, k);
        let f_large = analysis::standard_fpp(m, n + 100, k);
        prop_assert!(f_large >= f_small);
    }

    /// The nibble-packed counting filter agrees bit-for-bit with the
    /// byte-counter one under any insert/remove interleaving that stays
    /// below saturation.
    #[test]
    fn compact_agrees_with_byte_counting(
        ops in proptest::collection::vec(("[a-z]{1,8}", any::<bool>()), 0..200),
    ) {
        let mut compact = CompactCountingBloomFilter::new(8_192, 4, 11);
        let mut full = CountingBloomFilter::new(8_192, 4, 11);
        for (item, insert) in &ops {
            if *insert {
                compact.insert(item);
                full.insert(item);
            } else {
                let a = compact.remove(item);
                let b = full.remove(item);
                prop_assert_eq!(a.is_ok(), b.is_ok());
            }
        }
        prop_assume!(compact.max_counter() < 15);
        for (item, _) in &ops {
            prop_assert_eq!(compact.contains(item), full.contains(item));
        }
        prop_assert_eq!(compact.item_count(), full.item_count());
    }

    /// Hash-once invariant: for any item, seed, and geometry, the probe
    /// sequence derived from a precomputed [`Fingerprint`] is identical to
    /// the direct `probe_indices` walk, and the `(h1, h2)` pair matches
    /// `index_pair`. This is what lets one digest serve every filter of a
    /// query.
    #[test]
    fn fingerprint_probes_equal_probe_indices(
        item in "[a-z/]{1,32}",
        seed in any::<u64>(),
        m in 1usize..20_000,
        k in 1u32..16,
    ) {
        let fp = Fingerprint::of(item.as_str());
        prop_assert_eq!(fp.pair(seed), hash::index_pair(item.as_str(), seed));
        let derived: Vec<usize> = fp.probes(seed, m, k).collect();
        let direct: Vec<usize> = hash::probe_indices(item.as_str(), seed, m, k).collect();
        prop_assert_eq!(derived, direct);
    }

    /// The fingerprint-accepting filter variants answer exactly like the
    /// item-hashing ones.
    #[test]
    fn fingerprint_variants_match_item_variants(
        items in arb_items(),
        probes in arb_items(),
        seed in any::<u64>(),
    ) {
        let mut by_item = BloomFilter::new(8192, 5, seed);
        let mut by_fp = BloomFilter::new(8192, 5, seed);
        for item in &items {
            by_item.insert(item);
            by_fp.insert_fp(&Fingerprint::of(item.as_str()));
        }
        prop_assert_eq!(&by_item, &by_fp);
        for probe in items.iter().chain(&probes) {
            let fp = Fingerprint::of(probe.as_str());
            prop_assert_eq!(by_item.contains(probe), by_item.contains_fp(&fp));
        }
    }

    /// A bit-sliced [`SharedShapeArray`] answers (`None`/`Unique`/
    /// `Multiple`, including candidate sets) exactly like a plain
    /// [`BloomFilterArray`] built from the same inserts.
    #[test]
    fn shared_shape_array_matches_plain_array(
        inserts in proptest::collection::vec(("[a-z]{1,12}", 0u16..70), 0..300),
        probes in proptest::collection::vec("[a-z]{1,12}", 0..60),
        seed in any::<u64>(),
        homes in 1u16..70,
    ) {
        let shape = ghba_bloom::FilterShape { bits: 8192, hashes: 5, seed };
        let mut plain: BloomFilterArray<u16> = (0..homes)
            .map(|id| (id, BloomFilter::new(shape.bits, shape.hashes, shape.seed)))
            .collect();
        let mut sliced = SharedShapeArray::new(shape);
        for id in 0..homes {
            sliced.push(id).unwrap();
        }
        for (item, home) in &inserts {
            let home = home % homes;
            plain.get_mut(home).unwrap().insert(item);
            sliced.insert(home, item).unwrap();
        }
        for probe in inserts.iter().map(|(item, _)| item).chain(&probes) {
            let fp = Fingerprint::of(probe.as_str());
            let expected = plain.query(probe);
            prop_assert_eq!(&sliced.query(probe), &expected, "item {}", probe);
            prop_assert_eq!(&sliced.query_fp(&fp), &expected, "fp of {}", probe);
            prop_assert_eq!(&plain.query_fp(&fp), &expected, "plain fp of {}", probe);
        }
    }

    /// Masked shared-shape queries agree with a plain array restricted to
    /// the same subset of filters.
    #[test]
    fn masked_query_matches_subset_array(
        inserts in proptest::collection::vec(("[a-z]{1,10}", 0u16..16), 0..150),
        subset in proptest::collection::vec(0u16..16, 0..16),
        probe in "[a-z]{1,10}",
    ) {
        let shape = ghba_bloom::FilterShape { bits: 4096, hashes: 4, seed: 3 };
        let mut sliced = SharedShapeArray::new(shape);
        let mut filters: Vec<BloomFilter> = (0..16)
            .map(|_| BloomFilter::new(shape.bits, shape.hashes, shape.seed))
            .collect();
        for id in 0u16..16 {
            sliced.push(id).unwrap();
        }
        for (item, home) in &inserts {
            filters[usize::from(*home)].insert(item);
            sliced.insert(*home, item).unwrap();
        }
        let mut unique_subset = subset.clone();
        unique_subset.sort_unstable();
        unique_subset.dedup();
        let restricted: BloomFilterArray<u16> = unique_subset
            .iter()
            .map(|&id| (id, filters[usize::from(id)].clone()))
            .collect();
        let fp = Fingerprint::of(probe.as_str());
        let expected = restricted.query(&probe);
        let mask = sliced.subset_mask(unique_subset.iter().copied());
        prop_assert_eq!(mask.len(), unique_subset.len());
        prop_assert_eq!(sliced.query_fp_masked(&fp, &mask), expected);
    }

    /// The PR-2 acceptance property: a [`ProbeBatch`] of B fingerprints
    /// returns bit-identical `Hit`s to B sequential `query_fp` /
    /// `query_fp_among` calls — across masks, pushes, and removals.
    #[test]
    fn probe_batch_matches_sequential(
        inserts in proptest::collection::vec(("[a-z]{1,12}", 0u16..70), 0..250),
        removals in proptest::collection::vec(0u16..70, 0..8),
        probes in proptest::collection::vec(("[a-z]{1,12}", proptest::collection::vec(0u16..70, 0..6)), 1..24),
        seed in any::<u64>(),
        homes in 1u16..70,
    ) {
        let shape = ghba_bloom::FilterShape { bits: 8192, hashes: 5, seed };
        let mut sliced = SharedShapeArray::new(shape);
        for id in 0..homes {
            sliced.push(id).unwrap();
        }
        for (item, home) in &inserts {
            sliced.insert(home % homes, item).unwrap();
        }
        for id in &removals {
            sliced.remove(id % homes);
        }
        // Half the probes are existing items, half arbitrary; every other
        // probe is masked to an arbitrary candidate subset (possibly
        // naming removed or never-pushed ids, which masks must ignore).
        let mut batch = ghba_bloom::ProbeBatch::new();
        let mut expected = Vec::new();
        for (i, (item, subset)) in probes.iter().enumerate() {
            let item = inserts.get(i).map_or(item.as_str(), |(it, _)| it.as_str());
            let fp = Fingerprint::of(item);
            if i % 2 == 0 {
                expected.push(sliced.query_fp(&fp));
                batch.push(fp);
            } else {
                expected.push(sliced.query_fp_among(&fp, subset.iter().copied()));
                batch.push_masked(fp, sliced.subset_mask(subset.iter().copied()));
            }
        }
        prop_assert_eq!(sliced.query_batch(&mut batch), expected);
    }

    /// Dedup acceptance: a batch drowning in duplicate fingerprints (the
    /// flash-crowd shape) answers bit-identically to sequential queries —
    /// duplicates are resolved once and fanned out.
    #[test]
    fn probe_batch_dedup_matches_sequential(
        inserts in proptest::collection::vec(("[a-z]{1,10}", 0u16..40), 0..150),
        hot in "[a-z]{1,10}",
        pattern in proptest::collection::vec((0usize..4, 0u16..40), 1..48),
        seed in any::<u64>(),
    ) {
        let shape = ghba_bloom::FilterShape { bits: 4096, hashes: 5, seed };
        let mut sliced = SharedShapeArray::new(shape);
        for id in 0..40u16 {
            sliced.push(id).unwrap();
        }
        for (item, home) in &inserts {
            sliced.insert(*home, item).unwrap();
        }
        // Mostly the hot item (unmasked and under repeated masks), with a
        // sprinkle of distinct items: exercises lane-equal groups with
        // equal masks (fanned out), differing masks (one shared row-AND,
        // masks applied at classification), and the all-distinct fast
        // path in the same suite.
        let mut batch = ghba_bloom::ProbeBatch::new();
        let mut expected = Vec::new();
        for &(kind, id) in &pattern {
            let (item, subset): (&str, Vec<u16>) = match kind {
                0 => (hot.as_str(), vec![]),
                1 => (hot.as_str(), vec![id, id.wrapping_add(1) % 40]),
                2 => (inserts.get(usize::from(id)).map_or("cold", |(it, _)| it.as_str()), vec![]),
                _ => ("absent-item", vec![id]),
            };
            let fp = Fingerprint::of(item);
            if subset.is_empty() {
                expected.push(sliced.query_fp(&fp));
                batch.push(fp);
            } else {
                expected.push(sliced.query_fp_among(&fp, subset.iter().copied()));
                batch.push_masked(fp, sliced.subset_mask(subset.iter().copied()));
            }
        }
        prop_assert_eq!(sliced.query_batch(&mut batch), expected);
    }

    /// Cross-mask dedup at wide stride (the in-kernel-verdict path):
    /// one hot fingerprint queued under many *different* candidate masks
    /// — the shape a flash crowd entering through different servers
    /// produces — answers bit-identically to sequential masked queries.
    #[test]
    fn probe_batch_cross_mask_dedup_matches_sequential(
        inserts in proptest::collection::vec(("[a-z]{1,10}", 0u16..130), 0..200),
        hot in "[a-z]{1,10}",
        hot_homes in proptest::collection::vec(0u16..130, 0..4),
        subsets in proptest::collection::vec(proptest::collection::vec(0u16..140, 0..12), 2..24),
        seed in any::<u64>(),
    ) {
        // 130 slots ⇒ stride 3: the wide-stride kernel with in-kernel
        // classification runs, and mixed-mask groups must bypass its
        // (unmasked) verdict for their masked members.
        let shape = ghba_bloom::FilterShape { bits: 4096, hashes: 5, seed };
        let mut sliced = SharedShapeArray::new(shape);
        for id in 0..130u16 {
            sliced.push(id).unwrap();
        }
        for (item, home) in &inserts {
            sliced.insert(*home, item).unwrap();
        }
        for home in &hot_homes {
            sliced.insert(*home, &hot).unwrap();
        }
        let fp = Fingerprint::of(&hot);
        let mut batch = ghba_bloom::ProbeBatch::new();
        let mut expected = Vec::new();
        for (i, subset) in subsets.iter().enumerate() {
            // Interleave unmasked duplicates so groups mix None with
            // Some masks too (subsets may name never-pushed ids ≥ 130,
            // which masks ignore).
            if i % 3 == 2 {
                expected.push(sliced.query_fp(&fp));
                batch.push(fp);
            } else {
                expected.push(sliced.query_fp_among(&fp, subset.iter().copied()));
                batch.push_masked(fp, sliced.subset_mask(subset.iter().copied()));
            }
        }
        prop_assert_eq!(sliced.query_batch(&mut batch), expected);
    }

    /// Bulk loading via the 64×64 block transpose is bit-identical to
    /// pushing the same filters one slot at a time.
    #[test]
    fn from_filters_transpose_matches_push_filter(
        per_filter in proptest::collection::vec(proptest::collection::vec("[a-z]{1,10}", 0..20), 0..150),
        probes in proptest::collection::vec("[a-z]{1,10}", 0..30),
        seed in any::<u64>(),
    ) {
        let shape = ghba_bloom::FilterShape { bits: 4096, hashes: 5, seed };
        let filters: Vec<(u16, BloomFilter)> = per_filter
            .iter()
            .enumerate()
            .map(|(id, items)| {
                let mut f = BloomFilter::new(shape.bits, shape.hashes, shape.seed);
                for item in items {
                    f.insert(item);
                }
                (id as u16, f)
            })
            .collect();
        let bulk = SharedShapeArray::from_filters(filters.clone()).unwrap();
        let mut pushed = SharedShapeArray::with_capacity(shape, filters.len());
        for (id, filter) in &filters {
            pushed.push_filter(*id, filter).unwrap();
        }
        prop_assert_eq!(bulk.len(), pushed.len());
        for (id, filter) in &filters {
            let extracted = bulk.extract(*id);
            prop_assert_eq!(extracted.as_ref(), Some(filter));
        }
        for probe in probes.iter().chain(per_filter.iter().flatten()) {
            let fp = Fingerprint::of(probe.as_str());
            prop_assert_eq!(bulk.query_fp(&fp), pushed.query_fp(&fp), "probe {}", probe);
        }
    }

    /// `ProbeBatch::derive_rows_into` yields exactly the per-fingerprint
    /// probe rows of `Fingerprint::probes`, for any shape.
    #[test]
    fn derive_rows_match_fingerprint_probes(
        items in proptest::collection::vec("[a-z/]{1,16}", 1..24),
        bits in 64usize..100_000,
        hashes in 1u32..12,
        seed in any::<u64>(),
    ) {
        let shape = ghba_bloom::FilterShape { bits, hashes, seed };
        let mut batch = ghba_bloom::ProbeBatch::new();
        let mut expected: Vec<u32> = Vec::new();
        for item in &items {
            let fp = Fingerprint::of(item.as_str());
            batch.push(fp);
            fp.probe_rows_into(seed, bits, hashes, &mut expected);
        }
        let mut rows = Vec::new();
        batch.derive_rows_into(shape, &mut rows);
        prop_assert_eq!(rows, expected);
    }

    /// Hit classification is consistent with candidate count.
    #[test]
    fn hit_classification(ids in proptest::collection::vec(any::<u16>(), 0..10)) {
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let hit = match uniq.len() {
            0 => Hit::None,
            1 => Hit::Unique(uniq[0]),
            _ => Hit::Multiple(uniq.clone()),
        };
        prop_assert_eq!(hit.candidates().len(), uniq.len());
        prop_assert_eq!(hit.is_unique(), uniq.len() == 1);
    }
}
