//! Regenerates the paper's Figure 8 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig8_9_10(&mut std::io::stdout().lock(), 8)
}
