//! Regenerates the paper's fig15 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig15(&mut std::io::stdout().lock())
}
