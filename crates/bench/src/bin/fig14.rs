//! Regenerates the paper's fig14 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig14(&mut std::io::stdout().lock())
}
