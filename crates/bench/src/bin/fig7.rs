//! Regenerates the paper's fig7 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig7(&mut std::io::stdout().lock())
}
