//! Regenerates the paper's fig6 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig6(&mut std::io::stdout().lock())
}
