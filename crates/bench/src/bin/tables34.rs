//! Regenerates the paper's tables34 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::tables34(&mut std::io::stdout().lock())
}
