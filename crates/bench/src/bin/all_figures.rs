//! Runs the entire evaluation battery (every table and figure).
fn main() -> std::io::Result<()> {
    let out = &mut std::io::stdout().lock();
    ghba_bench::figures::tables34(out)?;
    ghba_bench::figures::fig6(out)?;
    ghba_bench::figures::fig7(out)?;
    ghba_bench::figures::fig8_9_10(out, 8)?;
    ghba_bench::figures::fig8_9_10(out, 9)?;
    ghba_bench::figures::fig8_9_10(out, 10)?;
    ghba_bench::figures::fig11(out)?;
    ghba_bench::figures::fig12(out)?;
    ghba_bench::figures::fig13(out)?;
    ghba_bench::figures::fig14(out)?;
    ghba_bench::figures::fig15(out)?;
    ghba_bench::figures::table5(out)?;
    Ok(())
}
