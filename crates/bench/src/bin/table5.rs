//! Regenerates the paper's table5 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::table5(&mut std::io::stdout().lock())
}
