//! Regenerates the paper's fig13 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig13(&mut std::io::stdout().lock())
}
