//! Regenerates the paper's fig12 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig12(&mut std::io::stdout().lock())
}
