//! Regenerates the paper's fig11 series. See DESIGN.md §4.
fn main() -> std::io::Result<()> {
    ghba_bench::figures::fig11(&mut std::io::stdout().lock())
}
