//! Benchmark harness for the G-HBA reproduction.
//!
//! One module per experiment family; one binary per table/figure in
//! `src/bin/` (`fig6` … `fig15`, `tables34`, `table5`, `all_figures`).
//! Set `GHBA_QUICK=1` for reduced sweep sizes.

#![warn(missing_docs)]

pub mod common;
pub mod figures;
