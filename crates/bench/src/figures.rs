//! The experiment behind each figure of the paper's evaluation (§4–5).
//!
//! Every `figN` function regenerates the corresponding figure's series as
//! a Markdown table on the given writer. Absolute values reflect the
//! simulated latency model, not the authors' 2007 testbed; the shapes —
//! who wins, by what factor, where the optimum or crossover sits — are
//! the reproduction targets (recorded in `EXPERIMENTS.md`).

use std::io::{self, Write};

use ghba::replay::{populate, replay};
use ghba_analysis::{AnalyticModel, MemoryModel};
use ghba_baselines::{expected_hash_migrations, HashPlacement, HbaCluster};
use ghba_cluster::{PrototypeCluster, Scheme};
use ghba_core::{GhbaCluster, MdsId};
use ghba_trace::{intensify, TraceStats, WorkloadGenerator, WorkloadProfile};

use crate::common::{filter_bytes, header, ms, p_lru_of, row, sim_config, sized};

/// Builds a populated G-HBA cluster for one (N, M, workload) cell and
/// measures mean lookup latency over a replay slice.
fn measure_cell(
    n: usize,
    m: usize,
    profile: &WorkloadProfile,
    mem_budget: Option<usize>,
    pop: usize,
    ops: usize,
) -> (core::time::Duration, [f64; 4]) {
    measure_cell_contended(n, m, profile, mem_budget, pop, ops, 0.0)
}

/// Like [`measure_cell`] with a per-message contention factor.
#[allow(clippy::too_many_arguments)]
fn measure_cell_contended(
    n: usize,
    m: usize,
    profile: &WorkloadProfile,
    mem_budget: Option<usize>,
    pop: usize,
    ops: usize,
    contention: f64,
) -> (core::time::Duration, [f64; 4]) {
    // The update threshold must fire at this op scale (the paper replays
    // billions of ops; we scale the trigger instead of the trace).
    let mut config = sim_config(0xF16 + n as u64 + ((m as u64) << 8))
        .with_max_group_size(m)
        .with_update_threshold(48)
        .with_lru_capacity(2_048)
        .with_contention(contention);
    if let Some(bytes) = mem_budget {
        config = config.with_memory_per_mds(bytes);
    }
    let mut cluster = GhbaCluster::with_servers(config, n);
    let mut generator = WorkloadGenerator::new(profile.clone(), 0x5EED + m as u64);
    populate(
        &mut cluster,
        (0..pop as u64).map(|i| generator.path_of(i % generator.initial_population())),
    );
    cluster.flush_all_updates();
    // Warm the LRU arrays before measuring, as a long-running system
    // would be: every entry server must have seen the hot set, so the
    // warm-up scales with N (the paper warms over millions of ops).
    let warmup = ops.max(n * sized(1_500, 300));
    let _ = replay(&mut cluster, generator.by_ref().take(warmup));
    cluster.flush_all_updates();
    cluster.reset_stats();
    let report = replay(&mut cluster, generator.take(ops));
    (
        report.mean_latency(),
        report.levels.cumulative_percentages(),
    )
}

/// Figure 6: normalized throughput Γ vs group size M at N = 30 and 100.
///
/// Methodology per §4.1 of the paper: Γ is "generated … with the aid of
/// simulation results, including hit rates and latency of multi-level
/// query operations" — so the L1 hit rate is *measured* from a trace
/// replay, then Equations 2–4 (with the spill/queueing latency terms of
/// [`AnalyticModel`]) are swept over M.
pub fn fig6(out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "\n## Figure 6 — normalized throughput Γ vs group size M\n"
    )?;
    let pop = sized(3_000, 800);
    let ops = sized(9_000, 2_000);
    let m_values: Vec<usize> = (1..=15).collect();
    header(
        out,
        &[
            "workload",
            "N",
            "M",
            "measured P_LRU",
            "Γ (norm. throughput)",
            "optimal?",
        ],
    )?;
    for n in [30usize, 100] {
        for profile in WorkloadProfile::all() {
            // Measure the workload's L1 hit rate on a live cluster at the
            // paper's group size for this N.
            let probe_m = MemoryModel::paper_group_size(n);
            let (_, cumulative) = measure_cell(n, probe_m, &profile, None, pop, ops);
            let p_lru = (cumulative[0] / 100.0).clamp(0.05, 0.95);
            let model = AnalyticModel::new(n, p_lru);
            let sweep = model.sweep(15);
            let best = model.optimal_m(15);
            for &m in &m_values {
                let gamma = sweep
                    .iter()
                    .find(|(mm, _)| *mm == m)
                    .map_or(0.0, |&(_, g)| g);
                row(
                    out,
                    &[
                        profile.name.to_string(),
                        n.to_string(),
                        m.to_string(),
                        format!("{p_lru:.2}"),
                        format!("{gamma:.1}"),
                        if m == best {
                            "◀ optimal".into()
                        } else {
                            String::new()
                        },
                    ],
                )?;
            }
        }
    }
    writeln!(
        out,
        "\nPaper: optimal M ≈ 5–6 at N = 30 and ≈ 9 at N = 100, unimodal in M."
    )
}

/// Figure 7: optimal group size (and M/N ratio) vs number of MDSs,
/// from the calibrated analytic Γ model.
pub fn fig7(out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "\n## Figure 7 — optimal group size vs number of MDSs\n"
    )?;
    header(out, &["N", "HP M*", "INS M*", "RES M*", "M/N (HP)"])?;
    for n in [10usize, 30, 60, 100, 150, 200] {
        let mut optima = Vec::new();
        for profile in WorkloadProfile::all() {
            let model = AnalyticModel::new(n, p_lru_of(&profile));
            optima.push(model.optimal_m(20));
        }
        row(
            out,
            &[
                n.to_string(),
                optima[0].to_string(),
                optima[1].to_string(),
                optima[2].to_string(),
                format!("{:.3}", optima[0] as f64 / n as f64),
            ],
        )?;
    }
    writeln!(
        out,
        "\nPaper: M* grows sublinearly (≈3 → ≈14–18); M/N falls 0.3 → 0.07."
    )
}

/// Figures 8–10: average latency vs operations replayed, HBA vs G-HBA,
/// under shrinking memory.
pub fn fig8_9_10(out: &mut impl Write, figure: u8) -> io::Result<()> {
    let (profile, labels) = match figure {
        8 => (WorkloadProfile::hp(), ["1.2GB", "800MB", "500MB"]),
        9 => (WorkloadProfile::res(), ["800MB", "500MB", "300MB"]),
        _ => (WorkloadProfile::ins(), ["900MB", "600MB", "400MB"]),
    };
    writeln!(
        out,
        "\n## Figure {figure} — avg latency vs #ops under the {} trace\n",
        profile.name
    )?;
    let n = 30usize;
    let m = 6usize;
    let pop = sized(6_000, 1_500);
    let checkpoints = 6usize;
    let chunk = sized(4_000, 800);

    // Demand at end of replay for an HBA server: N−1 replicas + local
    // structures + LRU + the metadata cache of its share of touched
    // files. The largest memory label maps to 100 % of this demand (HBA
    // fully resident), smaller labels proportionally less.
    let plain = filter_bytes();
    let touched = pop + checkpoints * chunk / 12; // pop + ~8 % creates
    let demand = (n - 1) * plain
        + FILTER_LIVE_BYTES
        + n * 4_096
        + touched.div_ceil(n) * ghba_core::META_ENTRY_BYTES * 2;
    const FILTER_LIVE_BYTES: usize = 14_000;
    let max_gb: f64 = labels.iter().map(|l| parse_gb(l)).fold(0.0, f64::max);

    header(out, &{
        let mut cells = vec!["scheme", "memory"];
        cells.extend(
            ["@1", "@2", "@3", "@4", "@5", "@6"]
                .iter()
                .take(checkpoints),
        );
        cells
    })?;

    for label in labels {
        let gb = parse_gb(label);
        // Map the paper's absolute sizes onto the scaled demand: the
        // largest label ≈ everything fits, the smallest ≈ heavy spill.
        let bytes = ((demand as f64) * (gb / max_gb)).round() as usize;
        for scheme in ["HBA", "G-HBA"] {
            let mut cells = vec![scheme.to_string(), label.to_string()];
            let config = sim_config(0xF800 + u64::from(figure))
                .with_max_group_size(m)
                .with_memory_per_mds(bytes);
            let generator = WorkloadGenerator::new(profile.clone(), 0xF80 + u64::from(figure));
            let paths =
                (0..pop as u64).map(|i| generator.path_of(i % generator.initial_population()));
            if scheme == "HBA" {
                let mut cluster = HbaCluster::with_servers(config, n);
                populate(&mut cluster, paths);
                cluster.flush_all_updates();
                cluster.reset_stats();
                let mut stream = generator;
                for _ in 0..checkpoints {
                    let report = replay(&mut cluster, stream.by_ref().take(chunk));
                    cells.push(format!("{}ms", ms(report.mean_latency())));
                }
            } else {
                let mut cluster = GhbaCluster::with_servers(config, n);
                populate(&mut cluster, paths);
                cluster.flush_all_updates();
                cluster.reset_stats();
                let mut stream = generator;
                for _ in 0..checkpoints {
                    let report = replay(&mut cluster, stream.by_ref().take(chunk));
                    cells.push(format!("{}ms", ms(report.mean_latency())));
                }
            }
            row(out, &cells)?;
        }
    }
    writeln!(
        out,
        "\nPaper: ample memory → HBA slightly ahead; shrinking memory → HBA's \
         latency climbs (replica/metadata spill) while G-HBA stays flat."
    )
}

/// Parses a "1.2GB"/"800MB" label into gigabytes.
fn parse_gb(label: &str) -> f64 {
    let trimmed = label.trim_end_matches("GB").trim_end_matches("MB");
    let v: f64 = trimmed.parse().expect("numeric label");
    if label.ends_with("GB") {
        v
    } else {
        v / 1000.0
    }
}

/// Figure 11: replicas migrated when one MDS joins, vs N.
pub fn fig11(out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "\n## Figure 11 — replicas migrated on one MDS insertion\n"
    )?;
    header(
        out,
        &[
            "N",
            "HBA",
            "Hash (INS)",
            "Hash (HP)",
            "Hash (RES)",
            "G-HBA (measured)",
            "G-HBA (bound)",
        ],
    )?;
    for n in (10usize..=100).step_by(10) {
        let m = MemoryModel::paper_group_size(n);
        // HBA: the newcomer copies every existing replica.
        let hba = n;
        // Hash placement: re-hash the joined group's N−M′ replicas; seed
        // models the layout each workload induces.
        let mut hash_counts = Vec::new();
        for (i, _) in WorkloadProfile::all().iter().enumerate() {
            let members: Vec<MdsId> = (0..m as u16).map(MdsId).collect();
            let mut placement = HashPlacement::new(members, 0x4A5 + i as u64);
            let origins: Vec<MdsId> = (100..100 + (n - m) as u16).map(MdsId).collect();
            hash_counts.push(placement.join_and_count_migrations(MdsId(99), &origins));
        }
        // G-HBA: measured from a live cluster join. Splits are a separate
        // (amortized) event the paper's figure excludes, so take the first
        // non-split join.
        let config = sim_config(0xF11).with_max_group_size(m);
        let mut cluster = GhbaCluster::with_servers(config, n);
        cluster.reset_stats();
        let report = loop {
            let (_, report) = cluster.add_mds_reported();
            if !report.split {
                break report;
            }
        };
        let bound = (n - m) / (m + 1);
        row(
            out,
            &[
                n.to_string(),
                hba.to_string(),
                hash_counts[1].to_string(),
                hash_counts[0].to_string(),
                hash_counts[2].to_string(),
                report.migrated_replicas.to_string(),
                bound.to_string(),
            ],
        )?;
    }
    writeln!(
        out,
        "\nPaper: HBA = N; hash ≈ {:.0}% of N−M′ and rising with N; G-HBA ≈ (N−M′)/(M′+1), flattest.",
        expected_hash_migrations(100, 9) / 91.0 * 100.0
    )
}

/// Figure 12: latency of updating stale replicas, HBA vs G-HBA.
pub fn fig12(out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "\n## Figure 12 — stale-replica update latency\n")?;
    header(
        out,
        &[
            "workload",
            "N",
            "M",
            "scheme",
            "updates",
            "avg latency (ms)",
        ],
    )?;
    let update_rounds = sized(90, 20);
    for profile in WorkloadProfile::all() {
        for (n, m) in [(30usize, 6usize), (100, 9)] {
            // G-HBA measured.
            let config = sim_config(0xF12).with_max_group_size(m);
            let mut ghba_cluster = GhbaCluster::with_servers(config.clone(), n);
            let generator = WorkloadGenerator::new(profile.clone(), 0xF12);
            let ids = ghba_cluster.server_ids();
            for k in 0..update_rounds {
                let home = ids[k % ids.len()];
                for i in 0..40 {
                    ghba_cluster.create_file_at(&generator.path_of((k * 40 + i) as u64), home);
                }
                ghba_cluster.push_update(home);
            }
            let ghba_avg = ghba_cluster.stats().update_latency.mean();
            // HBA measured.
            let mut hba_cluster = HbaCluster::with_servers(config, n);
            for k in 0..update_rounds {
                let home = MdsId((k % n) as u16);
                for i in 0..40 {
                    hba_cluster.create_file_at(&generator.path_of((k * 40 + i) as u64), home);
                }
                hba_cluster.push_update(home);
            }
            let hba_avg = hba_cluster.stats().update_latency.mean();
            for (scheme, avg) in [("G-HBA", ghba_avg), ("HBA", hba_avg)] {
                row(
                    out,
                    &[
                        profile.name.to_string(),
                        n.to_string(),
                        m.to_string(),
                        scheme.to_string(),
                        update_rounds.to_string(),
                        ms(avg),
                    ],
                )?;
            }
        }
    }
    writeln!(
        out,
        "\nPaper: G-HBA updates one MDS per group vs HBA's system-wide \
         broadcast — lower latency, gap widening with N."
    )
}

/// Figure 13: percentage of queries served by each level, vs N.
pub fn fig13(out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "\n## Figure 13 — % of queries served per level\n")?;
    header(out, &["N", "M", "≤L1", "≤L2", "≤L3", "≤L4"])?;
    let profile = WorkloadProfile::hp();
    let pop = sized(4_000, 1_000);
    let ops = sized(12_000, 3_000);
    for n in (10usize..=100).step_by(10) {
        let m = MemoryModel::paper_group_size(n);
        let (_, cumulative) = measure_cell(n, m, &profile, None, pop, ops);
        row(
            out,
            &[
                n.to_string(),
                m.to_string(),
                format!("{:.1}%", cumulative[0]),
                format!("{:.1}%", cumulative[1]),
                format!("{:.1}%", cumulative[2]),
                format!("{:.1}%", cumulative[3]),
            ],
        )?;
    }
    writeln!(
        out,
        "\nPaper: L1+L2 ≥ ~80%, +L3 ≥ ~90% even at N = 100; the L4 share \
         grows slowly with N (staleness)."
    )
}

/// Figure 14: prototype query latency under the intensified HP trace.
pub fn fig14(out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "\n## Figure 14 — prototype query latency (threads + channels)\n"
    )?;
    let n = sized(60, 12);
    let tif = sized(60, 8) as u32;
    let pop = sized(3_000, 600);
    let checkpoints = 5usize;
    let chunk = sized(3_000, 500);
    header(out, &{
        let mut cells = vec!["scheme"];
        cells.extend(["@1", "@2", "@3", "@4", "@5"].iter().take(checkpoints));
        cells
    })?;
    let profile = WorkloadProfile::hp();
    for scheme in [Scheme::Ghba { max_group_size: 7 }, Scheme::Hba] {
        let mut cluster =
            PrototypeCluster::spawn(scheme, sim_config(0xF14).with_update_threshold(128), n);
        let mut stream = intensify(&profile, tif, 0xF14);
        let paths: Vec<String> = stream.hot_paths(pop as u64 / u64::from(tif)).collect();
        for path in &paths {
            cluster.create(path);
        }
        cluster.flush_updates();
        let mut cells = vec![match scheme {
            Scheme::Ghba { .. } => "G-HBA".to_string(),
            Scheme::Hba => "HBA".to_string(),
        }];
        for _ in 0..checkpoints {
            let mut total = core::time::Duration::ZERO;
            let mut count = 0u32;
            for record in stream.by_ref().take(chunk) {
                if record.op.is_read() {
                    // Map the record onto a pre-populated path so the
                    // prototype measures hit latency, as the paper does.
                    let idx = ghba_bloom::hash::hash_one(&record.path, 7) as usize % paths.len();
                    let path = &paths[idx];
                    total += cluster.lookup(path).latency;
                    count += 1;
                }
            }
            cells.push(format!(
                "{:.1}µs",
                total.as_secs_f64() * 1e6 / f64::from(count.max(1))
            ));
        }
        row(out, &cells)?;
        cluster.shutdown();
    }
    writeln!(
        out,
        "\nPaper: G-HBA up to ~31% lower latency than HBA at the heaviest load."
    )
}

/// Figure 15: prototype messages per node insertion.
pub fn fig15(out: &mut impl Write) -> io::Result<()> {
    writeln!(
        out,
        "\n## Figure 15 — prototype messages per node insertion\n"
    )?;
    let n = sized(60, 12);
    let additions = 10usize;
    header(out, &["new node #", "G-HBA msgs", "HBA msgs"])?;
    let mut ghba =
        PrototypeCluster::spawn(Scheme::Ghba { max_group_size: 7 }, sim_config(0xF15), n);
    let mut hba = PrototypeCluster::spawn(Scheme::Hba, sim_config(0xF15), n);
    for k in 1..=additions {
        let (_, ghba_msgs) = ghba.add_node();
        let (_, hba_msgs) = hba.add_node();
        row(
            out,
            &[k.to_string(), ghba_msgs.to_string(), hba_msgs.to_string()],
        )?;
    }
    ghba.shutdown();
    hba.shutdown();
    writeln!(
        out,
        "\nPaper: HBA ≈ 2N messages per insertion and climbing; G-HBA several \
         times fewer (one replica install per group plus light migration)."
    )
}

/// Tables 3–4: intensified trace statistics.
pub fn tables34(out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "\n## Tables 3–4 — intensified workload statistics\n")?;
    header(
        out,
        &[
            "trace",
            "TIF",
            "hosts",
            "users",
            "open%",
            "close%",
            "stat%",
            "sample size",
        ],
    )?;
    let sample = sized(120_000, 20_000);
    for profile in WorkloadProfile::all() {
        let tif = profile.paper_tif;
        let stats = TraceStats::collect(intensify(&profile, tif, 0x734).take(sample));
        let pct = |op| stats.count(op) as f64 / stats.records as f64 * 100.0;
        row(
            out,
            &[
                profile.name.to_string(),
                tif.to_string(),
                format!("{} (paper {})", stats.hosts, profile.hosts * tif),
                format!(
                    "{} (paper {})",
                    stats.users,
                    u64::from(profile.users) * u64::from(tif)
                ),
                format!("{:.1}%", pct(ghba_trace::MetaOp::Open)),
                format!("{:.1}%", pct(ghba_trace::MetaOp::Close)),
                format!("{:.1}%", pct(ghba_trace::MetaOp::Stat)),
                stats.records.to_string(),
            ],
        )?;
    }
    writeln!(
        out,
        "\nPaper Tables 3–4: INS×30 → 570 hosts / 9,780 users; RES×100 → \
         1,300 / 5,000; HP×40 → 1,280 active users; op mix preserved under TIF."
    )
}

/// Table 5: relative memory overhead per MDS, model vs live structures.
pub fn table5(out: &mut impl Write) -> io::Result<()> {
    writeln!(out, "\n## Table 5 — per-MDS memory normalized to BFA8\n")?;
    header(
        out,
        &[
            "N",
            "BFA8",
            "BFA16",
            "HBA",
            "G-HBA",
            "paper HBA",
            "paper G-HBA",
        ],
    )?;
    let model = MemoryModel::default();
    let paper = [
        (20, 1.0002, 0.2002),
        (40, 1.0004, 0.1670),
        (60, 1.0006, 0.1434),
        (80, 1.0008, 0.1258),
        (100, 1.0010, 0.1121),
    ];
    for (n, paper_hba, paper_ghba) in paper {
        let [b8, b16, hba, ghba] = model.table5_row(n);
        row(
            out,
            &[
                n.to_string(),
                format!("{b8:.4}"),
                format!("{b16:.4}"),
                format!("{hba:.4}"),
                format!("{ghba:.4}"),
                format!("{paper_hba:.4}"),
                format!("{paper_ghba:.4}"),
            ],
        )?;
    }
    writeln!(out, "\nModel reproduces the published table to ≤0.002.")
}
