//! Shared experiment plumbing: configurations, memory-budget scaling, and
//! table printing.

use std::io::{self, Write};

use ghba_core::GhbaConfig;
use ghba_trace::WorkloadProfile;

/// `true` when `GHBA_QUICK` is set: smaller sweeps for smoke runs.
#[must_use]
pub fn quick() -> bool {
    std::env::var_os("GHBA_QUICK").is_some()
}

/// Picks `full` or `quick` depending on the mode.
#[must_use]
pub fn sized(full: usize, quick_size: usize) -> usize {
    if quick() {
        quick_size
    } else {
        full
    }
}

/// The filter capacity all simulated experiments share (files per MDS the
/// filters are sized for).
pub const FILTER_CAPACITY: usize = 1_000;
/// Bits per file in the simulated experiments.
pub const BITS_PER_FILE: f64 = 12.0;
/// Bytes of one plain published filter under the shared geometry.
#[must_use]
pub fn filter_bytes() -> usize {
    (FILTER_CAPACITY as f64 * BITS_PER_FILE / 8.0).ceil() as usize
}

/// The standard simulation configuration for the figure experiments.
#[must_use]
pub fn sim_config(seed: u64) -> GhbaConfig {
    let mut config = GhbaConfig::default()
        .with_filter_capacity(FILTER_CAPACITY)
        .with_bits_per_file(BITS_PER_FILE)
        .with_lru_capacity(512)
        .with_update_threshold(256)
        .with_seed(seed);
    // Small per-home LRU filters keep the L1 memory share realistic.
    config.lru_bits = 4_096;
    config.lru_hashes = 4;
    config
}

/// L1 hit rates the workloads exhibit (used by the analytic Figure 7
/// model; measured rates from the simulations agree within a few points).
#[must_use]
pub fn p_lru_of(profile: &WorkloadProfile) -> f64 {
    match profile.name {
        "HP" => 0.70,
        "RES" => 0.68,
        _ => 0.62,
    }
}

/// A per-MDS memory budget that keeps local structures, a full LRU array,
/// and exactly ~`resident` replica filters in RAM, plus `metacache_bytes`
/// of metadata cache. Replicas beyond `resident` spill to disk.
#[must_use]
pub fn budget(n: usize, resident_replicas: usize, metacache_bytes: usize) -> usize {
    let live = (FILTER_CAPACITY as f64 * BITS_PER_FILE) as usize; // 1 B/counter
    let plain = filter_bytes();
    let lru_max = n * 4_096; // one 4 KB counting filter per home
    live + plain + lru_max + resident_replicas * plain + metacache_bytes
}

/// Writes a Markdown-style table row.
pub fn row(out: &mut impl Write, cells: &[String]) -> io::Result<()> {
    writeln!(out, "| {} |", cells.join(" | "))
}

/// Writes a Markdown-style header row with separator.
pub fn header(out: &mut impl Write, cells: &[&str]) -> io::Result<()> {
    writeln!(out, "| {} |", cells.join(" | "))?;
    writeln!(
        out,
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    )
}

/// Formats a duration in milliseconds with two decimals.
#[must_use]
pub fn ms(d: core::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_grows_with_residency() {
        assert!(budget(30, 10, 0) > budget(30, 2, 0));
        assert!(budget(30, 2, 100_000) > budget(30, 2, 0));
    }

    #[test]
    fn table_helpers_emit_markdown() {
        let mut buf = Vec::new();
        header(&mut buf, &["a", "b"]).unwrap();
        row(&mut buf, &["1".into(), "2".into()]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("| a | b |"));
        assert!(text.contains("|---|---|"));
        assert!(text.contains("| 1 | 2 |"));
    }

    #[test]
    fn p_lru_covers_all_profiles() {
        for p in WorkloadProfile::all() {
            let v = p_lru_of(&p);
            assert!((0.5..0.9).contains(&v));
        }
    }
}
