//! The PR-6 headline benchmark: lookup throughput *through*
//! reconfiguration, snapshot-pinned lock-free walks vs a mutation
//! barrier.
//!
//! Each scheme (G-HBA, HBA, BFA8) serves a sustained Zipf-head lookup
//! stream (80% of draws on 8 hot paths, a slice of absent paths to
//! exercise the broadcast level) from reader threads while a background
//! thread runs reconfigurations at a fixed cadence — G-HBA rebalances
//! groups through its [`ReconfigHandle`]; HBA/BFA oscillate one
//! published mirror out of and back into the array through theirs. Every
//! reconfiguration carries a simulated replica-migration pause
//! (`GHBA_CHURN_MIGRATE_MS`, default 60 ms) standing in for the data
//! copy a real rebalance performs.
//!
//! Two modes per scheme, identical workload and cadence:
//!
//! * **barrier** — the pre-snapshot design: one big lock. Readers take
//!   it per lookup; the reconfiguration thread holds it across the
//!   reconfiguration *and* its migration pause, so the stream stalls for
//!   every migration.
//! * **snapshot** — this PR: readers call the side-effect-free
//!   `lookup_concurrent` walk with no lock (each pins one epoch-tagged
//!   snapshot and walks it end to end); the handle builds successor
//!   snapshots off to the side, migrates unlocked, and publishes with
//!   one atomic pointer swap.
//!
//! Completed lookups are bucketed into 25 ms wall-clock windows. The
//! headline numbers are sustained throughput (lookups/s over complete
//! windows) and **stall windows** — complete windows in which not one
//! lookup finished. The win is snapshot mode holding zero stall windows
//! while the barrier's stream flatlines for every migration; with the
//! default 60 ms pause ≥ 2 windows/migration stall by construction.
//! Every lookup's answer is asserted against ground truth *during* the
//! churn, so the numbers only count correct resolutions.
//!
//! On a full-length run (`GHBA_CHURN_MS` ≥ 600) the acceptance bars are
//! asserted: zero snapshot-mode stall windows, ≥ 1 barrier-mode stall
//! window, and snapshot throughput ≥ 2× barrier throughput. Shorter
//! runs (CI smoke via `CRITERION_MEASURE_MS`) only prove the harness
//! executes; their numbers are noise. `GHBA_CHURN_FILES` shrinks the
//! namespace, `GHBA_CHURN_READERS` the reader pool. Results are honest
//! only up to the host: on a 1-core container reader threads and the
//! churn thread time-slice one CPU, which *understates* the snapshot
//! win (the barrier's sleeps yield the core to nobody).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ghba::baselines::{BfaCluster, HbaCluster};
use ghba::core::{GhbaCluster, GhbaConfig, MdsId};
use ghba::simnet::DetRng;

/// Wall-clock bucket for stall detection.
const WINDOW_MS: u64 = 25;
/// The flash-crowd hot set: most lookups land on these few paths.
const HOT_SET: u64 = 8;
/// Share of lookups drawn from the hot set.
const HOT_SHARE: f64 = 0.80;
/// One draw in this many probes a nonexistent path (broadcast level).
const ABSENT_EVERY: u64 = 16;

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn path_of(i: u64) -> String {
    format!("/churn/d{}/f{i}", i % 127)
}

/// What one (scheme, mode) run measured.
struct Run {
    /// Lookups completed inside complete windows.
    lookups: u64,
    /// Complete 25 ms windows observed.
    windows: u64,
    /// Complete windows in which zero lookups finished.
    stalls: u64,
    /// Reconfigurations (each with its migration pause) completed.
    reconfigs: u64,
}

impl Run {
    fn throughput(&self) -> f64 {
        let secs = (self.windows * WINDOW_MS) as f64 / 1e3;
        self.lookups as f64 / secs.max(1e-9)
    }
}

/// Drives one measurement: `readers` threads looping `lookup` against
/// the shared cluster while one churn thread loops `reconfig` (which
/// performs its own migration pause) every `gap`. With `barrier` set,
/// readers take a shared mutex per lookup and the churn thread holds it
/// across each whole reconfiguration — the pre-snapshot design.
fn churn_run(
    lookup: &(dyn Fn(&mut DetRng) + Sync),
    reconfig: &mut (dyn FnMut() + Send),
    barrier: bool,
    readers: u64,
    measure: Duration,
    gap: Duration,
) -> Run {
    let lock = Mutex::new(());
    let stop = AtomicBool::new(false);
    let window_count = (measure.as_millis() as u64 / WINDOW_MS).max(1);
    let buckets: Vec<AtomicU64> = (0..window_count + 2).map(|_| AtomicU64::new(0)).collect();
    let reconfigs = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        let (lock, stop, buckets, reconfigs) = (&lock, &stop, &buckets, &reconfigs);
        for r in 0..readers {
            scope.spawn(move || {
                let mut rng = DetRng::new(0xC0FFEE ^ r);
                while !stop.load(Ordering::Relaxed) {
                    if barrier {
                        let _held = lock.lock().expect("reader lock");
                        lookup(&mut rng);
                    } else {
                        lookup(&mut rng);
                    }
                    let idx = start.elapsed().as_millis() as u64 / WINDOW_MS;
                    if let Some(bucket) = buckets.get(idx as usize) {
                        bucket.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if barrier {
                    let _held = lock.lock().expect("churn lock");
                    reconfig();
                } else {
                    reconfig();
                }
                reconfigs.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(gap);
            }
        });
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
    });

    let complete = &buckets[..window_count as usize];
    Run {
        lookups: complete.iter().map(|b| b.load(Ordering::Relaxed)).sum(),
        windows: window_count,
        stalls: complete
            .iter()
            .filter(|b| b.load(Ordering::Relaxed) == 0)
            .count() as u64,
        reconfigs: reconfigs.load(Ordering::Relaxed),
    }
}

/// Runs barrier vs snapshot for one scheme, prints both, and (on
/// full-length runs) asserts the acceptance bars.
fn compare(
    scheme: &str,
    lookup: &(dyn Fn(&mut DetRng) + Sync),
    reconfig: &mut (dyn FnMut() + Send),
    readers: u64,
    measure: Duration,
    gap: Duration,
) {
    let barrier = churn_run(lookup, reconfig, true, readers, measure, gap);
    let snapshot = churn_run(lookup, reconfig, false, readers, measure, gap);
    let ratio = snapshot.throughput() / barrier.throughput().max(1e-9);
    for (mode, run) in [("barrier", &barrier), ("snapshot", &snapshot)] {
        eprintln!(
            "snapshot_churn/{scheme}/{mode}: {:.0} lookups/s, {} stall windows \
             of {} ({} reconfigs, {} lookups)",
            run.throughput(),
            run.stalls,
            run.windows,
            run.reconfigs,
            run.lookups,
        );
    }
    eprintln!("snapshot_churn/{scheme}: snapshot/barrier throughput ratio {ratio:.2}x");
    if measure >= Duration::from_millis(600) {
        assert_eq!(
            snapshot.stalls, 0,
            "{scheme}: the lock-free stream must never flatline"
        );
        assert!(
            barrier.stalls > 0,
            "{scheme}: the barrier must stall during migrations (cadence bug?)"
        );
        assert!(
            ratio >= 2.0,
            "{scheme}: snapshot throughput must be >= 2x the barrier ({ratio:.2}x)"
        );
    }
}

fn main() {
    let measure_ms = env_size(
        "GHBA_CHURN_MS",
        env_size("CRITERION_MEASURE_MS", 1_200).max(1),
    );
    let measure = Duration::from_millis(measure_ms);
    let migrate = Duration::from_millis(env_size("GHBA_CHURN_MIGRATE_MS", 60));
    let gap = Duration::from_millis(20);
    let files = env_size("GHBA_CHURN_FILES", 6_000);
    let readers = env_size("GHBA_CHURN_READERS", 2);
    let absents: Vec<String> = (0..64).map(|i| format!("/churn/absent{i}")).collect();

    // ---- G-HBA: background group rebalances through the handle. ----
    {
        let config = GhbaConfig::default()
            .with_filter_capacity(20_000)
            .with_max_group_size(6)
            .with_seed(0x6B);
        let mut cluster = GhbaCluster::with_servers(config, 48);
        ghba::replay::populate(&mut cluster, (0..files).map(path_of));
        cluster.flush_all_updates();
        let truths: Vec<MdsId> = (0..files)
            .map(|i| cluster.true_home(&path_of(i)).expect("created"))
            .collect();
        let handle = cluster.reconfig_handle();
        let mut next_group = 0usize;
        let mut reconfig = || {
            let gids = handle.group_ids();
            let gid = gids[next_group % gids.len()];
            next_group += 1;
            let _ = handle.rebalance_group(gid);
            std::thread::sleep(migrate);
        };
        let lookup = |rng: &mut DetRng| {
            let entry = MdsId(rng.below(48) as u16);
            if rng.below(ABSENT_EVERY) == 0 {
                let path = &absents[rng.below(64) as usize];
                assert!(cluster.lookup_concurrent(entry, path).home.is_none());
            } else {
                let file = if rng.next_f64() < HOT_SHARE {
                    rng.below(HOT_SET)
                } else {
                    rng.below(files)
                };
                let outcome = cluster.lookup_concurrent(entry, &path_of(file));
                assert_eq!(outcome.home, Some(truths[file as usize]));
            }
        };
        compare("ghba", &lookup, &mut reconfig, readers, measure, gap);
    }

    // ---- HBA / BFA8: retire/restore one published mirror per beat. ----
    let mirror_schemes: [(&str, HbaCluster); 2] = {
        let base = GhbaConfig::default()
            .with_filter_capacity(20_000)
            .with_seed(0x6C);
        let mut hba = HbaCluster::with_servers(base.clone(), 12);
        let mut bfa = BfaCluster::with_servers(base, 12, 8.0);
        ghba::replay::populate(&mut hba, (0..files).map(path_of));
        hba.flush_all_updates();
        ghba::replay::populate(&mut bfa, (0..files).map(path_of));
        bfa.inner_mut().flush_all_updates();
        [("hba", hba), ("bfa8", bfa.inner().clone())]
    };
    for (scheme, cluster) in &mirror_schemes {
        let truths: Vec<MdsId> = (0..files)
            .map(|i| cluster.true_home(&path_of(i)).expect("created"))
            .collect();
        let handle = cluster.reconfig_handle();
        let mut victim = 0u16;
        let mut reconfig = || {
            let id = MdsId(victim % 12);
            victim += 1;
            // Mirror leaves the published array, "migrates", returns:
            // lookups homed there degrade to broadcast meanwhile.
            let filter = handle.retire_mds(id).expect("victim published");
            std::thread::sleep(migrate);
            assert!(handle.restore_mds(id, &filter));
        };
        let lookup = |rng: &mut DetRng| {
            let entry = MdsId(rng.below(12) as u16);
            if rng.below(ABSENT_EVERY) == 0 {
                let path = &absents[rng.below(64) as usize];
                assert!(cluster.lookup_concurrent(entry, path).home.is_none());
            } else {
                let file = if rng.next_f64() < HOT_SHARE {
                    rng.below(HOT_SET)
                } else {
                    rng.below(files)
                };
                let outcome = cluster.lookup_concurrent(entry, &path_of(file));
                assert_eq!(outcome.home, Some(truths[file as usize]));
            }
        };
        compare(scheme, &lookup, &mut reconfig, readers, measure, gap);
    }
}
