//! The PR-7 headline benchmark: mixed read/write batch throughput,
//! pin-once `execute_concurrent` from `&self` vs the `&mut self`
//! funnel behind one big lock.
//!
//! Worker threads each submit a sustained stream of mixed [`OpBatch`]es
//! (lookups of a pre-populated namespace plus creates and renames on
//! per-thread private paths — concurrent writer load by construction)
//! against one shared G-HBA cluster. Two modes, identical workload:
//!
//! * **funnel** — the pre-PR-7 design: the cluster sits behind a
//!   `Mutex` and every batch takes the lock to call the `&mut self`
//!   [`execute`] pipeline, so batches serialize end to end.
//! * **pin-once** — this PR: workers call [`execute_concurrent`] from
//!   `&self` with no lock. Each batch pins one routing snapshot at
//!   admission, fans its fused read runs across the exec pool, and
//!   appends writes to fingerprint-hashed shard logs; the one
//!   [`drain_concurrent`] reconciliation is charged to the measured
//!   wall clock before throughput is computed.
//!
//! Every lookup of a pre-populated path is asserted against ground
//! truth, so the numbers only count correct resolutions. On full-length
//! runs (`GHBA_OPS_MS` >= 600) on a multi-core host the acceptance bar
//! is asserted: pin-once throughput >= 1.5x the funnel. On a 1-core
//! host full-length runs still measure pin-once well ahead (1.3-2.2x
//! observed — per-home delta staging amortizes publishes, and the
//! pinned walk is cheaper per op than the funnel's), but the margin
//! rides on single-CPU time-slicing noise, so the bar is reported
//! rather than asserted, and the ratio understates the design win (the
//! funnel's serialization costs nothing without parallelism).
//! `GHBA_OPS_FILES` shrinks the
//! namespace, `GHBA_OPS_THREADS` the worker pool, and
//! `GHBA_OPS_READS`/`GHBA_OPS_CREATES`/`GHBA_OPS_RENAME_EVERY` reshape
//! the batch mix for ablation.
//!
//! [`OpBatch`]: ghba::core::OpBatch
//! [`execute`]: ghba::core::MetadataService::execute
//! [`execute_concurrent`]: ghba::core::MetadataService::execute_concurrent
//! [`drain_concurrent`]: ghba::core::GhbaCluster::drain_concurrent

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ghba::core::{
    EntryPolicy, GhbaCluster, GhbaConfig, MdsId, MetadataService, OpBatch, OpOutcome,
};
use ghba::simnet::DetRng;

/// Lookups per batch (`GHBA_OPS_READS`); writes ride along at a fixed
/// ratio (`GHBA_OPS_CREATES` creates per batch on per-thread private
/// paths, a rename every `GHBA_OPS_RENAME_EVERY` batches — renames off
/// when creates are off). Overriding the write knobs to zero isolates
/// the read path for ablation.
fn reads_per_batch() -> u64 {
    env_size("GHBA_OPS_READS", 16)
}
fn creates_per_batch() -> u64 {
    std::env::var("GHBA_OPS_CREATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}
fn rename_every() -> u64 {
    env_size("GHBA_OPS_RENAME_EVERY", 4)
}

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn path_of(i: u64) -> String {
    format!("/ops/d{}/f{i}", i % 127)
}

fn build_cluster(files: u64) -> (GhbaCluster, Vec<MdsId>) {
    let config = GhbaConfig::default()
        .with_filter_capacity(20_000)
        .with_max_group_size(6)
        .with_seed(0x7A);
    let mut cluster = GhbaCluster::with_servers(config, 48);
    ghba::replay::populate(&mut cluster, (0..files).map(path_of));
    cluster.flush_all_updates();
    let truths = (0..files)
        .map(|i| cluster.true_home(&path_of(i)).expect("created"))
        .collect();
    (cluster, truths)
}

/// Builds worker `t`'s batch number `round` and the truth indices of
/// its lookups (parallel to the leading lookup outcomes).
fn build_batch(t: u64, round: u64, files: u64, rng: &mut DetRng) -> (OpBatch, Vec<u64>) {
    let mut batch = OpBatch::new().with_entry(EntryPolicy::Random);
    let reads = reads_per_batch();
    let creates = creates_per_batch();
    let mut lookups = Vec::with_capacity(reads as usize);
    for _ in 0..reads {
        let file = rng.below(files);
        batch.push_lookup(path_of(file));
        lookups.push(file);
    }
    for j in 0..creates {
        batch.push_create(format!("/ops/t{t}/r{round}/f{j}"));
    }
    if creates > 0 && round % rename_every() == rename_every() - 1 && round > 0 {
        // Rename a file this thread created a few rounds ago; private
        // per-thread paths keep the write sets disjoint across workers.
        batch.push_rename(
            format!("/ops/t{t}/r{}/f0", round - 1),
            format!("/ops/t{t}/mv{round}"),
        );
    }
    (batch, lookups)
}

fn check_lookups(outcomes: &[OpOutcome], lookups: &[u64], truths: &[MdsId]) {
    for (outcome, &file) in outcomes.iter().zip(lookups) {
        let OpOutcome::Resolved(query) = outcome else {
            panic!("leading ops are lookups");
        };
        assert_eq!(
            query.home,
            Some(truths[file as usize]),
            "lookup of {} resolved the wrong home",
            path_of(file)
        );
    }
}

/// One mode's measurement: batches completed, ops completed, and the
/// wall clock including the end-of-run reconciliation.
struct Run {
    batches: u64,
    ops: u64,
    elapsed: Duration,
}

impl Run {
    fn throughput(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The `&mut self` funnel: every batch locks the cluster.
fn run_funnel(files: u64, truths: &[MdsId], threads: u64, measure: Duration) -> Run {
    let (cluster, _) = build_cluster(files);
    let cluster = Mutex::new(cluster);
    let stop = AtomicBool::new(false);
    let batches = AtomicU64::new(0);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let (cluster, stop, batches, ops) = (&cluster, &stop, &batches, &ops);
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = DetRng::new(0xF0CA1 ^ t);
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (batch, lookups) = build_batch(t, round, files, &mut rng);
                    let outcomes = {
                        let mut held = cluster.lock().expect("funnel lock");
                        held.execute(&batch)
                    };
                    check_lookups(&outcomes, &lookups, truths);
                    batches.fetch_add(1, Ordering::Relaxed);
                    ops.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    round += 1;
                }
            });
        }
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
    });
    let mut cluster = cluster.into_inner().expect("no poisoned workers");
    cluster.flush_all_updates();
    Run {
        batches: batches.load(Ordering::Relaxed),
        ops: ops.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

/// The pin-once pipeline: every batch runs from `&self`; the one
/// `&mut` drain at the end reconciles the shard logs and is charged
/// to the measured wall clock.
fn run_pinned(files: u64, truths: &[MdsId], threads: u64, measure: Duration) -> Run {
    let (mut cluster, _) = build_cluster(files);
    let stop = AtomicBool::new(false);
    let batches = AtomicU64::new(0);
    let ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let cluster = &cluster;
        let (stop, batches, ops) = (&stop, &batches, &ops);
        for t in 0..threads {
            scope.spawn(move || {
                let mut rng = DetRng::new(0xF0CA1 ^ t);
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (batch, lookups) = build_batch(t, round, files, &mut rng);
                    let outcomes = cluster.execute_concurrent(&batch);
                    check_lookups(&outcomes, &lookups, truths);
                    batches.fetch_add(1, Ordering::Relaxed);
                    ops.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    round += 1;
                }
            });
        }
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
    });
    cluster.drain_concurrent();
    cluster.flush_all_updates();
    cluster
        .check_invariants()
        .expect("post-drain invariants after the measured run");
    Run {
        batches: batches.load(Ordering::Relaxed),
        ops: ops.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

fn main() {
    let measure_ms = env_size(
        "GHBA_OPS_MS",
        env_size("CRITERION_MEASURE_MS", 1_200).max(1),
    );
    let measure = Duration::from_millis(measure_ms);
    let files = env_size("GHBA_OPS_FILES", 6_000);
    let threads = env_size("GHBA_OPS_THREADS", 4);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let (_, truths) = build_cluster(files);
    let funnel = run_funnel(files, &truths, threads, measure);
    let pinned = run_pinned(files, &truths, threads, measure);
    let ratio = pinned.throughput() / funnel.throughput().max(1e-9);

    for (mode, run) in [("funnel", &funnel), ("pin-once", &pinned)] {
        eprintln!(
            "concurrent_ops/{mode}: {:.0} ops/s ({} batches, {} ops, {:.0} ms)",
            run.throughput(),
            run.batches,
            run.ops,
            run.elapsed.as_secs_f64() * 1e3,
        );
    }
    eprintln!(
        "concurrent_ops: pin-once/funnel throughput ratio {ratio:.2}x \
         ({threads} workers, {cores} cores)"
    );
    if measure >= Duration::from_millis(600) && cores >= 2 {
        assert!(
            ratio >= 1.5,
            "pin-once throughput must be >= 1.5x the funnel ({ratio:.2}x)"
        );
    } else if cores == 1 {
        // Full-length 1-core runs measure 1.3-2.2x, but worker threads
        // time-slice one CPU, so the margin is scheduler noise rather
        // than parallel scaling — reported, not asserted.
        eprintln!(
            "concurrent_ops: 1-core host, the >= 1.5x bar is not asserted \
             (measured {ratio:.2}x; single-CPU time-slicing is too noisy)"
        );
    }
}
