//! Ablation: exact-LRU vs generational L1 arrays (the paper's future-work
//! question about replacement efficiency, §7).

use criterion::{criterion_group, criterion_main, Criterion};
use ghba_bloom::{GenerationalLruArray, LruBloomArray};
use ghba_simnet::DetRng;
use ghba_trace::Zipf;
use std::hint::black_box;

fn access_stream(len: usize) -> Vec<(u64, u16)> {
    let zipf = Zipf::new(10_000, 1.1);
    let mut rng = DetRng::new(77);
    (0..len)
        .map(|_| {
            let file = zipf.sample(&mut rng);
            (file, (file % 30) as u16)
        })
        .collect()
}

fn bench_exact_lru(c: &mut Criterion) {
    let stream = access_stream(4_096);
    c.bench_function("l1/exact_lru_record_query", |b| {
        let mut lru = LruBloomArray::new(2_048, 16_384, 4, 3);
        let mut i = 0usize;
        b.iter(|| {
            let (file, home) = stream[i % stream.len()];
            lru.record(&file, home);
            i += 1;
            black_box(lru.query(&file))
        });
    });
}

fn bench_generational(c: &mut Criterion) {
    let stream = access_stream(4_096);
    c.bench_function("l1/generational_record_query", |b| {
        let mut lru = GenerationalLruArray::new(2_048, 16_384, 4, 3);
        let mut i = 0usize;
        b.iter(|| {
            let (file, home) = stream[i % stream.len()];
            lru.record(&file, home);
            i += 1;
            black_box(lru.query(&file))
        });
    });
}

fn report_hit_quality(c: &mut Criterion) {
    // Not a timing benchmark: emit the hit-quality comparison once so the
    // ablation has a correctness dimension in the bench output.
    let stream = access_stream(100_000);
    let mut exact = LruBloomArray::new(2_048, 16_384, 4, 3);
    let mut generational = GenerationalLruArray::new(2_048, 16_384, 4, 3);
    let (mut exact_hits, mut gen_hits) = (0u32, 0u32);
    for &(file, home) in &stream {
        if exact.query(&file).unique() == Some(&home) {
            exact_hits += 1;
        }
        if generational.query(&file).unique() == Some(&home) {
            gen_hits += 1;
        }
        exact.record(&file, home);
        generational.record(&file, home);
    }
    println!(
        "\nL1 unique-hit quality over {} Zipf accesses: exact {:.1}% vs generational {:.1}% \
         (memory {} vs {} KiB)\n",
        stream.len(),
        f64::from(exact_hits) / stream.len() as f64 * 100.0,
        f64::from(gen_hits) / stream.len() as f64 * 100.0,
        exact.memory_bytes() / 1024,
        generational.memory_bytes() / 1024,
    );
    c.bench_function("l1/hit_quality_report", |b| b.iter(|| black_box(1 + 1)));
}

criterion_group!(
    benches,
    bench_exact_lru,
    bench_generational,
    report_hit_quality
);
criterion_main!(benches);
