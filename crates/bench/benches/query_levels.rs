//! Simulated-cluster benchmarks: wall-clock cost of driving lookups
//! through the G-HBA hierarchy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghba_core::{GhbaCluster, GhbaConfig, MdsId};
use std::hint::black_box;

fn cluster(n: usize) -> GhbaCluster {
    let config = GhbaConfig::default()
        .with_max_group_size(6)
        .with_filter_capacity(2_000)
        .with_seed(5);
    let mut cluster = GhbaCluster::with_servers(config, n);
    for i in 0..1_000 {
        cluster.create_file(&format!("/bench/f{i}"));
    }
    cluster.flush_all_updates();
    cluster
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    for n in [12usize, 30, 60] {
        let mut cl = cluster(n);
        group.bench_with_input(BenchmarkId::new("hit", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let outcome = cl.lookup(black_box(&format!("/bench/f{}", i % 1_000)));
                i += 1;
                outcome
            });
        });
        let mut cl = cluster(n);
        group.bench_with_input(BenchmarkId::new("miss", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let outcome = cl.lookup(black_box(&format!("/absent/f{i}")));
                i += 1;
                outcome
            });
        });
    }
    group.finish();
}

fn bench_l1_hit(c: &mut Criterion) {
    let mut cl = cluster(30);
    let entry = MdsId(0);
    let _ = cl.lookup_from(entry, "/bench/f1");
    c.bench_function("lookup/l1_warm", |b| {
        b.iter(|| cl.lookup_from(entry, black_box("/bench/f1")));
    });
}

fn bench_l2_segment(c: &mut Criterion) {
    // LRU disabled: every hit resolves via the L2 segment probe, i.e. the
    // bit-sliced published slab — the path this PR's hash-once +
    // bit-slicing work targets.
    let config = GhbaConfig::default()
        .with_max_group_size(6)
        .with_filter_capacity(2_000)
        .with_lru_capacity(0)
        .with_seed(5);
    let mut cl = GhbaCluster::with_servers(config, 30);
    for i in 0..1_000 {
        cl.create_file(&format!("/bench/f{i}"));
    }
    cl.flush_all_updates();
    c.bench_function("lookup/l2_segment_slab", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let outcome = cl.lookup(black_box(&format!("/bench/f{}", i % 1_000)));
            i += 1;
            outcome
        });
    });
}

fn bench_create(c: &mut Criterion) {
    let mut cl = cluster(30);
    c.bench_function("create", |b| {
        let mut i = 1_000_000u64;
        b.iter(|| {
            cl.create_file(black_box(&format!("/new/f{i}")));
            i += 1;
        });
    });
}

criterion_group!(
    benches,
    bench_lookup,
    bench_l1_hit,
    bench_l2_segment,
    bench_create
);
criterion_main!(benches);
