//! The PR-10 durability benchmark: WAL overhead per sync policy and
//! recovery time vs log length.
//!
//! **Question 1 — what does durability cost at the drain?** The WAL
//! hooks the pin-once pipeline at shard-log drain: committed batches
//! are logged (and, per policy, synced) before their effects publish.
//! The bench replays an identical seeded create/remove workload —
//! `GHBA_WAL_BATCHES` batches of `GHBA_WAL_OPS` ops, one
//! `drain_concurrent` barrier per batch, a filter flush every 16
//! batches — against four configurations: no WAL at all (the PR-7
//! in-memory baseline), `SyncPolicy::None` (append only, OS-paced),
//! `SyncPolicy::GroupCommit(5ms)` (sync at most every 5 ms of drains),
//! and `SyncPolicy::EveryBatch` (fdatasync per drain). Reported per
//! policy: wall time, per-drain overhead vs in-memory, and log bytes.
//!
//! **Question 2 — what does a restart pay?** Recovery replays
//! checkpoint-plus-WAL-tail through the same drain/flush paths
//! original execution took. The bench writes logs of increasing length
//! (0.25×, 1×, 4× the workload) with no checkpoints — recovery cost
//! must scale with the tail — then repeats the longest run with
//! `checkpoint_every = 64` drains, which bounds the tail regardless of
//! history. Reported per length: log bytes, records, recovery wall ms.
//!
//! **The correctness bar is in-bench and unconditional**: every single
//! recovery in both parts must rebuild a cluster whose durable state —
//! [`Checkpoint`] capture with the WAL watermark masked: namespaces,
//! fingerprints, published filter bytes, group shape, membership and
//! per-group epochs, publish/drift counters — is byte-identical to the
//! writer's at its final drain. On full runs (`CRITERION_MEASURE_MS`
//! ≥ 600) the structural bars are asserted too: the checkpointed log's
//! tail stays under the un-checkpointed one and recovery replays only
//! past the watermark. Wall numbers are printed for context; no timing
//! ordering is asserted (container noise owns that), the shape of the
//! curve is what `BENCH_PR10.json` records.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ghba::core::{
    Checkpoint, EntryPolicy, GhbaCluster, GhbaConfig, MetadataService, OpBatch, SyncPolicy, Wal,
    WalOptions,
};

/// MDS servers in the cluster (6 groups of 4 at the default shape).
const SERVERS: usize = 24;

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(20_000)
        .with_lru_capacity(0)
        .with_seed(0x0A1D)
}

fn path_of(i: u64) -> String {
    format!("/wal/d{}/f{i}", i % 13)
}

/// The seeded workload: `batches` barriers of `ops` mutations each.
/// Every 4th batch removes the previous batch's low quarter (so the
/// log carries removes and re-creates, not just appends), and every
/// 16th barrier flushes all filters (so `FlushAll` records replay
/// too). Deterministic: no RNG, `RoundRobin` entries only.
fn run_workload(cluster: &mut GhbaCluster, batches: u64, ops: u64) {
    for b in 0..batches {
        let mut batch = OpBatch::new().with_entry(EntryPolicy::RoundRobin {
            start: b as usize % SERVERS,
        });
        for i in 0..ops {
            batch.push_create(path_of(b * ops + i));
        }
        if b % 4 == 3 {
            for i in 0..ops / 4 {
                batch.push_remove(path_of((b - 1) * ops + i));
            }
        }
        cluster.execute_concurrent(&batch);
        cluster.drain_concurrent();
        if b % 16 == 15 {
            cluster.flush_all_updates();
        }
    }
}

/// The writer's durable state with the WAL watermark masked — what a
/// recovery must reproduce bit-for-bit.
fn durable_state(cluster: &mut GhbaCluster) -> Checkpoint {
    let mut state = cluster.capture_checkpoint();
    state.wal_seq = 0;
    state
}

/// Asserts the recovered cluster is bit-identical to the writer where
/// durability promises it: the in-bench correctness bar.
fn assert_recovered(writer: &mut GhbaCluster, dir: &Path, label: &str) -> Duration {
    let start = Instant::now();
    let mut recovered = GhbaCluster::recover(config(), SERVERS, dir, WalOptions::default())
        .unwrap_or_else(|err| panic!("{label}: recovery failed: {err}"));
    let elapsed = start.elapsed();
    assert_eq!(
        durable_state(&mut recovered),
        durable_state(writer),
        "{label}: recovered durable state diverged from the writer's"
    );
    elapsed
}

/// On-disk size of the live log segment.
fn log_bytes(dir: &Path) -> u64 {
    std::fs::metadata(dir.join("wal.log")).map_or(0, |m| m.len())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ghba-wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let full = env_size("CRITERION_MEASURE_MS", 1_200) >= 600;
    let batches = env_size("GHBA_WAL_BATCHES", if full { 256 } else { 24 });
    let ops = env_size("GHBA_WAL_OPS", 64);

    // Part 1: drain-path overhead per sync policy, against in-memory.
    let mut in_memory = Duration::ZERO;
    let policies: [(&str, Option<SyncPolicy>); 4] = [
        ("in_memory", None),
        ("sync_none", Some(SyncPolicy::None)),
        (
            "group_commit_5ms",
            Some(SyncPolicy::GroupCommit(Duration::from_millis(5))),
        ),
        ("every_batch", Some(SyncPolicy::EveryBatch)),
    ];
    for (label, policy) in policies {
        let mut cluster = GhbaCluster::with_servers(config(), SERVERS);
        let dir = temp_dir(label);
        if let Some(sync) = policy {
            let (wal, _) = Wal::open(
                &dir,
                WalOptions {
                    sync,
                    checkpoint_every: 0,
                },
            )
            .expect("wal");
            cluster.attach_wal(wal);
        }
        let start = Instant::now();
        run_workload(&mut cluster, batches, ops);
        let elapsed = start.elapsed();
        let records = cluster.wal().map_or(0, Wal::tail_len);
        let log_bytes = log_bytes(&dir);
        if policy.is_none() {
            in_memory = elapsed;
        }
        let overhead_ns = elapsed.saturating_sub(in_memory).as_nanos() as f64 / batches as f64;
        eprintln!(
            "wal_recovery/overhead/{label}: {:.1} ms total, {overhead_ns:.0} ns/drain over \
             in-memory, {records} records / {log_bytes} log bytes ({batches} drains x {ops} ops)",
            elapsed.as_secs_f64() * 1e3,
        );
        if policy.is_some() {
            let recovery = assert_recovered(&mut cluster, &dir, label);
            eprintln!(
                "wal_recovery/overhead/{label}: recovered bit-identical in {:.1} ms",
                recovery.as_secs_f64() * 1e3
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Part 2: recovery time vs log length (pure replay), then the
    // same longest history with a bounded, checkpointed tail.
    let lengths = [batches / 4, batches, batches * 4];
    let mut longest_bytes = 0u64;
    for length in lengths {
        let dir = temp_dir(&format!("replay-{length}"));
        let mut cluster = GhbaCluster::with_servers(config(), SERVERS);
        let (wal, _) = Wal::open(
            &dir,
            WalOptions {
                sync: SyncPolicy::None,
                checkpoint_every: 0,
            },
        )
        .expect("wal");
        cluster.attach_wal(wal);
        run_workload(&mut cluster, length, ops);
        let records = cluster.wal().expect("attached").tail_len();
        let bytes = log_bytes(&dir);
        longest_bytes = bytes;
        let recovery = assert_recovered(&mut cluster, &dir, "replay");
        eprintln!(
            "wal_recovery/replay/{length}_drains: {records} records, {bytes} log bytes, \
             recovered bit-identical in {:.1} ms",
            recovery.as_secs_f64() * 1e3
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let length = batches * 4;
        let dir = temp_dir("checkpointed");
        let mut cluster = GhbaCluster::with_servers(config(), SERVERS);
        let (wal, _) = Wal::open(
            &dir,
            WalOptions {
                sync: SyncPolicy::None,
                checkpoint_every: 64,
            },
        )
        .expect("wal");
        cluster.attach_wal(wal);
        run_workload(&mut cluster, length, ops);
        let tail_records = cluster.wal().expect("attached").tail_len();
        let tail_bytes = log_bytes(&dir);
        assert!(
            tail_bytes < longest_bytes,
            "checkpoints must bound the log: tail {tail_bytes} vs full {longest_bytes} bytes"
        );
        let recovery = assert_recovered(&mut cluster, &dir, "checkpointed");
        eprintln!(
            "wal_recovery/replay/{length}_drains_checkpointed: {tail_records} tail records / \
             {tail_bytes} bytes (vs {longest_bytes} unbounded), recovered bit-identical in \
             {:.1} ms",
            recovery.as_secs_f64() * 1e3
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    eprintln!(
        "wal_recovery: correctness bar held on every recovery ({} mode)",
        if full { "full" } else { "smoke" }
    );
}
