//! Microbenchmarks of the Bloom filter substrate: insert, probe, algebra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghba_bloom::{BloomFilter, BloomFilterArray, CountingBloomFilter, FilterDelta, Fingerprint};
use std::hint::black_box;

fn bench_insert_and_contains(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    for bits_per_file in [8.0, 16.0] {
        let mut filter = BloomFilter::for_items(100_000, bits_per_file);
        for i in 0..50_000u64 {
            filter.insert(&i);
        }
        group.bench_with_input(
            BenchmarkId::new("insert", bits_per_file as u64),
            &bits_per_file,
            |b, _| {
                let mut i = 0u64;
                b.iter(|| {
                    filter.insert(black_box(&i));
                    i += 1;
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("contains_hit", bits_per_file as u64),
            &bits_per_file,
            |b, _| {
                let mut i = 0u64;
                b.iter(|| {
                    let hit = filter.contains(black_box(&(i % 50_000)));
                    i += 1;
                    hit
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("contains_miss", bits_per_file as u64),
            &bits_per_file,
            |b, _| {
                let mut i = 1_000_000u64;
                b.iter(|| {
                    let hit = filter.contains(black_box(&i));
                    i += 1;
                    hit
                });
            },
        );
    }
    group.finish();
}

fn bench_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("algebra");
    let mut a = BloomFilter::for_items(100_000, 16.0);
    let mut b = a.clone();
    for i in 0..60_000u64 {
        a.insert(&i);
        b.insert(&(i + 30_000));
    }
    group.bench_function("union", |bench| {
        bench.iter(|| ghba_bloom::ops::union(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("xor_distance", |bench| {
        bench.iter(|| a.xor_distance(black_box(&b)).unwrap())
    });
    group.bench_function("delta_compute", |bench| {
        bench.iter(|| FilterDelta::between(black_box(&a), black_box(&b)).unwrap())
    });
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut filter = CountingBloomFilter::for_items(100_000, 10.0);
    for i in 0..50_000u64 {
        filter.insert(&i);
    }
    c.bench_function("counting/insert_remove", |b| {
        let mut i = 100_000u64;
        b.iter(|| {
            filter.insert(black_box(&i));
            filter.remove(black_box(&i)).unwrap();
            i += 1;
        });
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut group = c.benchmark_group("fingerprint");
    let path = "/home/alice/projects/ghba/results/run-42/output.log";
    group.bench_function("digest_path", |b| {
        b.iter(|| Fingerprint::of(black_box(path)));
    });
    let fp = Fingerprint::of(path);
    group.bench_function("derive_pair", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            let pair = fp.pair(black_box(seed));
            seed = seed.wrapping_add(1);
            pair
        });
    });
    let mut filter = BloomFilter::for_items(100_000, 16.0);
    for i in 0..50_000u64 {
        filter.insert(&i);
    }
    filter.insert(path);
    group.bench_function("contains_rehash", |b| {
        b.iter(|| filter.contains(black_box(path)));
    });
    group.bench_function("contains_fp", |b| {
        b.iter(|| filter.contains_fp(black_box(&fp)));
    });
    group.finish();
}

fn bench_array_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_query");
    for n in [10usize, 30, 100] {
        let array: BloomFilterArray<u16> = (0..n as u16)
            .map(|id| {
                let mut f = BloomFilter::for_items(10_000, 16.0).with_seed(9);
                for i in 0..5_000u64 {
                    f.insert(&((u64::from(id) << 32) | i));
                }
                (id, f)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                let hit = array.query(black_box(&((7u64 << 32) | (i % 5_000))));
                i += 1;
                hit
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_and_contains,
    bench_algebra,
    bench_counting,
    bench_fingerprint,
    bench_array_query
);
criterion_main!(benches);
