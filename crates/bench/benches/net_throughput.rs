//! The PR-8 headline benchmark: multi-client throughput over a real
//! loopback-TCP fleet vs direct in-process execution of the same
//! batches — the network variant of the fig. 14/15 latency/throughput
//! story.
//!
//! A [`LoopbackNet`] fleet (rendezvous + `GHBA_NET_REPLICAS` replica
//! servers, each a full G-HBA cluster, background reconcilers on a
//! short cadence) is hammered by `GHBA_NET_CLIENTS` client threads.
//! Each client replays its own stream of the "intensified Zipf,
//! K-client partition" profile ([`ClientPartition`]): private-namespace
//! mutations plus shared Zipf-hot reads, cut into `GHBA_NET_BATCH`-op
//! batches routed through the sharded planner (fingerprint partition,
//! two-wave cross-replica renames). Reported: aggregate ops/s plus
//! per-batch latency mean/p50/p90/p99 — the wire-protocol round trip,
//! framing, and cross-replica fan-out are all inside the measured
//! path.
//!
//! The **direct** baseline executes the same per-client batch streams
//! against an in-process [`Federation`] (same planner, same per-replica
//! clusters, no sockets) on one thread, isolating the network tax. On
//! a 1-core host the fleet's threads time-slice one CPU, so the
//! loopback/direct ratio *understates* a real deployment (where
//! replicas burn their own cores) — the ratio is reported, never
//! asserted. Knobs: `GHBA_NET_MS` (measured window per mode),
//! `GHBA_NET_FILES` (active set per namespace), `GHBA_NET_CLIENTS`,
//! `GHBA_NET_REPLICAS`, `GHBA_NET_SERVERS`, `GHBA_NET_BATCH`.

use std::time::{Duration, Instant};

use ghba::core::{EntryPolicy, GhbaConfig, OpBatch};
use ghba::net::{execute_sharded, record_batches, FleetSpec, LoopbackNet};
use ghba::simnet::LatencyStats;
use ghba::trace::{ClientPartition, WorkloadProfile};

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn base_config(files: u64) -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity((files as usize) * 8)
        .with_lru_capacity(0)
        .with_seed(0xBE2C)
}

fn profile(files: u64) -> WorkloadProfile {
    let mut profile = WorkloadProfile::res();
    profile.active_files = files;
    profile.total_files = files * 10;
    profile
}

fn populate_batches(fleet: &ClientPartition) -> Vec<OpBatch> {
    let mut policy = EntryPolicy::RoundRobin { start: 0 };
    let mut batches = Vec::new();
    let mut batch = OpBatch::new();
    for path in fleet.initial_paths() {
        batch.push_create(path);
        if batch.len() >= 512 {
            let ops = batch.len();
            batches.push(std::mem::take(&mut batch).with_entry(policy.advance(ops)));
        }
    }
    if !batch.is_empty() {
        let ops = batch.len();
        batches.push(batch.with_entry(policy.advance(ops)));
    }
    batches
}

struct ModeResult {
    ops: u64,
    batches: u64,
    elapsed: Duration,
    latency: LatencyStats,
}

impl ModeResult {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn report(label: &str, result: &ModeResult) {
    eprintln!(
        "  {label:<8} {:>9.0} ops/s  ({} ops, {} batches, {:.2}s)  \
         batch latency mean {:?} p50 {:?} p90 {:?} p99 {:?}",
        result.ops_per_sec(),
        result.ops,
        result.batches,
        result.elapsed.as_secs_f64(),
        result.latency.mean(),
        result.latency.percentile(50.0),
        result.latency.percentile(90.0),
        result.latency.percentile(99.0),
    );
}

fn main() {
    let measure_ms = env_size("GHBA_NET_MS", 2_000);
    let files = env_size("GHBA_NET_FILES", 2_000);
    let clients = env_size("GHBA_NET_CLIENTS", 2) as u32;
    let replicas = env_size("GHBA_NET_REPLICAS", 3) as usize;
    let servers = env_size("GHBA_NET_SERVERS", 4) as usize;
    let window = env_size("GHBA_NET_BATCH", 128) as usize;
    let seed = 0x4E71u64;
    eprintln!(
        "net_throughput: {clients} clients x {replicas} replicas x {servers} MDS/replica, \
         {files} files/namespace, {window}-op batches, {measure_ms}ms per mode \
         ({} cores)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let partition = ClientPartition::new(profile(files), clients, seed);
    let populate = populate_batches(&partition);

    // ---- loopback TCP fleet ----
    let net = LoopbackNet::launch(
        FleetSpec::new(replicas, servers, base_config(files))
            .with_drain_cadence(Duration::from_millis(25)),
    )
    .expect("fleet launches");
    {
        let mut client = net.client().expect("client connects");
        for batch in &populate {
            client.execute(batch).expect("populate");
        }
        client.drain_all().expect("publish");
    }
    let deadline = Instant::now() + Duration::from_millis(measure_ms);
    let start = Instant::now();
    let mut handles = Vec::new();
    for k in 0..clients {
        let partition = partition.clone();
        let mut client = net.client().expect("client connects");
        handles.push(std::thread::spawn(move || {
            let mut stats = LatencyStats::default();
            let mut ops = 0u64;
            let mut batches = 0u64;
            let stream = record_batches(
                partition.client(k),
                window,
                EntryPolicy::RoundRobin { start: k as usize },
            );
            for batch in stream {
                let len = batch.len() as u64;
                let t0 = Instant::now();
                let outcomes = client.execute(&batch).expect("measured batch");
                stats.record(t0.elapsed());
                assert_eq!(outcomes.len(), batch.len());
                ops += len;
                batches += 1;
                if Instant::now() >= deadline {
                    break;
                }
            }
            (ops, batches, stats)
        }));
    }
    let mut loopback = ModeResult {
        ops: 0,
        batches: 0,
        elapsed: Duration::ZERO,
        latency: LatencyStats::default(),
    };
    for handle in handles {
        let (ops, batches, stats) = handle.join().expect("client thread");
        loopback.ops += ops;
        loopback.batches += batches;
        loopback.latency.merge(&stats);
    }
    loopback.elapsed = start.elapsed();
    net.shutdown();
    report("loopback", &loopback);

    // ---- direct in-process baseline: same planner, no sockets ----
    let mut truth = ghba::net::Federation::new(&base_config(files), replicas, servers);
    for batch in &populate {
        execute_sharded(&mut truth, batch).expect("populate");
    }
    truth.drain_all();
    let deadline = Instant::now() + Duration::from_millis(measure_ms);
    let start = Instant::now();
    let mut direct = ModeResult {
        ops: 0,
        batches: 0,
        elapsed: Duration::ZERO,
        latency: LatencyStats::default(),
    };
    // Round-robin the clients' (persistent, infinite) streams on one
    // thread, four batches at a time.
    let mut streams: Vec<_> = (0..clients)
        .map(|k| {
            record_batches(
                partition.client(k),
                window,
                EntryPolicy::RoundRobin { start: k as usize },
            )
        })
        .collect();
    'outer: loop {
        for stream in &mut streams {
            for _ in 0..4 {
                let batch = stream.next().expect("streams are infinite");
                let len = batch.len() as u64;
                let t0 = Instant::now();
                let outcomes = execute_sharded(&mut truth, &batch).expect("direct batch");
                direct.latency.record(t0.elapsed());
                assert_eq!(outcomes.len(), batch.len());
                direct.ops += len;
                direct.batches += 1;
                if Instant::now() >= deadline {
                    break 'outer;
                }
            }
        }
    }
    direct.elapsed = start.elapsed();
    report("direct", &direct);

    let tax = direct.ops_per_sec() / loopback.ops_per_sec().max(1e-9);
    eprintln!(
        "  network tax: direct/loopback = {tax:.2}x (loopback carries framing, syscalls, \
         and thread hand-offs; on a 1-core host all fleet threads share one CPU)"
    );
}
