//! The PR-5 headline benchmark: the data-parallel batch execution
//! engine and the per-group epoch invalidation it rides with.
//!
//! **Part A — worker sweep.** The same Zipf-head mixed `OpBatch` (a
//! flash-crowd lookup burst with creates sprinkled through, so fused
//! runs split and writes stay in stream order between the parallel read
//! phases) executes against identically populated G-HBA clusters whose
//! only difference is `ExecutorConfig::workers` ∈ {1, 2, 4, 8}. Equal
//! work per iteration, so `execute_workers_1 / execute_workers_4` *is*
//! the per-lookup parallel speedup — the ISSUE-5 acceptance bar is
//! ≥ 2.5× at 4 workers **on a ≥ 4-core host**. The engine splits a
//! fused run into per-worker chunks only at
//! `min_parallel_batch`-or-larger runs; parallel outcomes are
//! bit-identical to sequential (asserted before timing). The host's
//! scheduler-visible core count is printed with the results: on a
//! 1-core container the sweep degenerates to measuring dispatch
//! overhead, not speedup — rerun on a multicore host before quoting.
//!
//! **Part B — warm-cache rebalance churn.** Two Persistent-mask-cache
//! clusters — per-group epochs vs the all-or-nothing `Global` reference
//! granularity — serve short shim-style lookup rounds between
//! standalone single-group rebalances (the churn a background balancer
//! produces). Per-group epochs invalidate only the rebalanced group's
//! masks, so rounds probing *other* groups keep a ≥ 0.99 hit rate;
//! the global flush cold-starts every mask each round and the same
//! rounds drop to ≈ 0. Hit rates come from `mask_cache_stats` deltas
//! after warm-up and are printed (and recorded in the committed
//! `BENCH_PR5.json`).
//!
//! `GHBA_PAR_FILES` / `GHBA_PAR_OPS` / `GHBA_PAR_ROUNDS` shrink the
//! namespace, the batch, and the churn loop for CI smoke runs (numbers
//! from shrunken runs are noise).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ghba::core::{
    EpochGranularity, ExecutorConfig, GhbaCluster, GhbaConfig, MaskCacheMode, MetadataService,
    OpBatch,
};
use ghba::replay::populate;
use ghba::simnet::DetRng;
use std::hint::black_box;

/// Files pre-populated across the cluster (override: `GHBA_PAR_FILES`).
const DEFAULT_FILES: u64 = 16_000;
/// Ops per batch iteration (override: `GHBA_PAR_OPS`).
const DEFAULT_OPS: u64 = 1_024;
/// Churn rounds in part B (override: `GHBA_PAR_ROUNDS`).
const DEFAULT_ROUNDS: u64 = 64;
/// Servers in the simulated cluster (16 groups of 8; slab stride 2).
const SERVERS: usize = 128;
/// The flash-crowd hot set: most lookups land on these few paths.
const HOT_SET: u64 = 8;
/// Share of lookups drawn from the hot set.
const HOT_SHARE: f64 = 0.80;
/// Share of batch ops that are creates (fresh paths): enough to make
/// the batch genuinely mixed (runs split, writes apply in stream
/// order), few enough that fused runs stay beyond the parallel floor.
const CREATE_SHARE: f64 = 0.01;

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn path_of(i: u64) -> String {
    format!("/bench/d{}/f{i}", i % 127)
}

fn base_config() -> GhbaConfig {
    // Slab-heavy geometry: no L1 level, wide filters, 128 servers —
    // every lookup exercises the bit-sliced batched probe paths the
    // parallel engine chunks across workers.
    GhbaConfig::default()
        .with_filter_capacity(20_000)
        .with_bits_per_file(16.0)
        .with_lru_capacity(0)
        .with_max_group_size(8)
        .with_update_threshold(4_096)
        .with_seed(0x0b)
}

fn build_cluster(files: u64, config: GhbaConfig) -> GhbaCluster {
    let mut cluster = GhbaCluster::with_servers(config, SERVERS);
    populate(&mut cluster, (0..files).map(path_of));
    cluster.flush_all_updates();
    cluster.reset_stats();
    cluster
}

/// The Zipf-head mixed batch: a flash-crowd lookup burst with fresh-path
/// creates sprinkled through (`first_new` starts the fresh namespace so
/// repeated builds do not collide).
fn build_batch(files: u64, ops: u64, first_new: u64) -> OpBatch {
    let mut rng = DetRng::new(0x9A5);
    let mut next_new = first_new;
    let mut batch = OpBatch::new();
    for _ in 0..ops {
        if rng.next_f64() < CREATE_SHARE {
            batch.push_create(path_of(next_new));
            next_new += 1;
        } else {
            let file = if rng.next_f64() < HOT_SHARE {
                rng.below(HOT_SET)
            } else {
                rng.below(files)
            };
            batch.push_lookup(path_of(file));
        }
    }
    batch
}

/// Part A: per-lookup wall time of the same mixed batch at each worker
/// count.
fn bench_worker_sweep(c: &mut Criterion, files: u64, ops: u64) {
    let batch = build_batch(files, ops, files);
    let reference = {
        let mut cluster = build_cluster(files, base_config());
        cluster.execute(&batch)
    };
    let mut group = c.benchmark_group("par_exec");
    for workers in [1usize, 2, 4, 8] {
        let config = base_config().with_executor(
            ExecutorConfig::default()
                .with_workers(workers)
                .with_min_parallel_batch(64),
        );
        let cluster = build_cluster(files, config);
        // Bit-identical before timed: the acceptance property, asserted
        // on the bench workload itself.
        {
            let mut probe = cluster.clone();
            assert_eq!(
                probe.execute(&batch),
                reference,
                "{workers} workers diverged from sequential"
            );
        }
        group.bench_function(&format!("execute_workers_{workers}"), |b| {
            b.iter_batched(
                || cluster.clone(),
                |mut cluster| black_box(cluster.execute(&batch).len()),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
    let cores = std::thread::available_parallelism().map_or(0, usize::from);
    eprintln!(
        "par_exec: host exposes {cores} core(s) — speedups above 1 require \
         at least as many cores as workers"
    );
}

/// Part B: mask-cache hit rate across single-group rebalance churn,
/// per-group epochs vs the global flush.
fn bench_rebalance_churn(files: u64, rounds: u64) {
    let run = |granularity: EpochGranularity| -> (f64, u64, u64) {
        let config = base_config()
            .with_mask_cache(MaskCacheMode::Persistent)
            .with_epoch_granularity(granularity);
        let mut cluster = build_cluster(files, config);
        // Shim-style probe rounds through 8 entries in distinct groups
        // (group size is 8, ids dense: server 8g sits in group g).
        let probes: Vec<ghba::core::MdsId> = (0..8u16).map(|g| ghba::core::MdsId(g * 8)).collect();
        let probe_groups: Vec<_> = probes
            .iter()
            .map(|&id| cluster.group_of(id).expect("grouped"))
            .collect();
        // Churn targets: groups none of the probe entries belong to —
        // the background-balancer case whose invalidations per-group
        // epochs confine.
        let churn: Vec<_> = cluster
            .server_ids()
            .into_iter()
            .filter_map(|id| cluster.group_of(id))
            .filter(|gid| !probe_groups.contains(gid))
            .collect();
        assert!(!churn.is_empty(), "probe groups must not cover the cluster");
        let mut rng = DetRng::new(0x7E8);
        // Warm every probed entry's masks, then measure from here.
        for &entry in &probes {
            let _ = cluster.lookup_from(entry, &path_of(0));
        }
        let (h0, m0) = cluster.mask_cache_stats().lifetime();
        for round in 0..rounds {
            let gid = churn[round as usize % churn.len()];
            cluster.rebalance_group(gid);
            for &entry in &probes {
                let _ = cluster.lookup_from(entry, &path_of(rng.below(files)));
            }
        }
        let (h1, m1) = cluster.mask_cache_stats().lifetime();
        let (hits, misses) = (h1 - h0, m1 - m0);
        let rate = hits as f64 / (hits + misses).max(1) as f64;
        (rate, hits, misses)
    };
    let (pg_rate, pg_hits, pg_misses) = run(EpochGranularity::PerGroup);
    let (gl_rate, gl_hits, gl_misses) = run(EpochGranularity::Global);
    eprintln!(
        "par_exec churn ({rounds} single-group rebalances): per-group epochs \
         {pg_hits} hits / {pg_misses} misses (hit rate {pg_rate:.4}); \
         global flush {gl_hits} hits / {gl_misses} misses (hit rate {gl_rate:.4})"
    );
    assert!(
        pg_rate > gl_rate,
        "per-group epochs must retain more warm masks than the global flush"
    );
}

fn bench_par_exec(c: &mut Criterion) {
    let files = env_size("GHBA_PAR_FILES", DEFAULT_FILES);
    let ops = env_size("GHBA_PAR_OPS", DEFAULT_OPS);
    let rounds = env_size("GHBA_PAR_ROUNDS", DEFAULT_ROUNDS);
    bench_worker_sweep(c, files, ops);
    bench_rebalance_churn(files, rounds);
}

criterion_group!(benches, bench_par_exec);
criterion_main!(benches);
