//! Reconfiguration benchmarks: joins (with and without splits), leaves,
//! and update pushes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghba_core::{GhbaCluster, GhbaConfig};
use std::hint::black_box;

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(6)
        .with_filter_capacity(1_000)
        .with_seed(13)
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    for n in [30usize, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || GhbaCluster::with_servers(config(), n),
                |mut cluster| black_box(cluster.add_mds()),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_leave(c: &mut Criterion) {
    c.bench_function("leave/n30", |b| {
        b.iter_batched(
            || GhbaCluster::with_servers(config(), 30),
            |mut cluster| {
                let victim = cluster.server_ids()[7];
                black_box(cluster.remove_mds(victim).unwrap())
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_update_push(c: &mut Criterion) {
    let mut cluster = GhbaCluster::with_servers(config(), 30);
    let home = cluster.server_ids()[0];
    c.bench_function("update_push/n30", |b| {
        let mut i = 0u64;
        b.iter(|| {
            cluster.create_file_at(&format!("/u/f{i}"), home);
            i += 1;
            black_box(cluster.push_update(home))
        });
    });
}

criterion_group!(benches, bench_join, bench_leave, bench_update_push);
criterion_main!(benches);
