//! The PR-3 headline benchmark: mixed-op vectored replay vs the legacy
//! flush-on-write replay, at Zipf-head (flash-crowd) geometry.
//!
//! Both sides drive the same pre-populated G-HBA cluster with the same
//! synthetic trace — lookups heavily skewed onto a small hot set, with
//! creates interleaved throughout (plus unlinks and renames):
//!
//! * **`mixed_batch`** — the vectored API path: `replay()` admits up to
//!   128 mixed records into one typed [`OpBatch`] and drains it through
//!   `MetadataService::execute`, which fuses read runs into batched slab
//!   passes (duplicate fingerprints deduped in-pass) and applies writes
//!   in stream order without ever flushing the window.
//! * **`flush_on_write`** — the pre-vectored replay loop, reconstructed
//!   verbatim: reads queue into a 16-lookup batch that is flushed before
//!   every write *and* before any repeated path, so Zipf-head repeats
//!   collapse the effective batch to a couple of lookups.
//!
//! Equal work per iteration (the whole trace), so
//! `flush_on_write / mixed_batch` *is* the replay throughput ratio — the
//! ISSUE-3 acceptance bar is ≥ 1.5×. Run with
//! `CRITERION_JSON=BENCH_PR3.json cargo bench --bench op_batch` to dump
//! machine-readable means (see `BENCH_PR3.json` at the repo root for the
//! committed snapshot and `EXPERIMENTS.md` for how to read it).
//!
//! `GHBA_OP_FILES` / `GHBA_OP_OPS` shrink the populated namespace and
//! the trace for CI smoke runs (numbers from shrunken runs are noise).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ghba::core::{GhbaCluster, GhbaConfig, MetadataService, QueryLevel};
use ghba::replay::{populate, replay};
use ghba::simnet::{DetRng, SimTime};
use ghba::trace::{MetaOp, TraceRecord};
use std::hint::black_box;

/// Files pre-populated across the cluster (override: `GHBA_OP_FILES`).
const DEFAULT_FILES: u64 = 16_000;
/// Trace records replayed per iteration (override: `GHBA_OP_OPS`).
const DEFAULT_OPS: u64 = 4_096;
/// Servers in the simulated cluster (slab stride 2).
const SERVERS: usize = 128;
/// The flash-crowd hot set: most lookups land on these few paths.
const HOT_SET: u64 = 8;
/// Share of lookups drawn from the hot set.
const HOT_SHARE: f64 = 0.80;
/// Share of records that are creates (fresh paths) — the INS/RES/HP
/// profiles put creates at 1–4 % of metadata ops.
const CREATE_SHARE: f64 = 0.03;
/// Share of records that are unlinks / renames (each).
const UNLINK_SHARE: f64 = 0.005;

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn path_of(i: u64) -> String {
    format!("/bench/d{}/f{i}", i % 127)
}

/// The Zipf-head mixed trace: reads dominated by a tiny hot set, writes
/// sprinkled throughout (the interleaving that forced the legacy replay
/// to flush constantly).
fn build_trace(files: u64, ops: u64) -> Vec<TraceRecord> {
    let mut rng = DetRng::new(0xB3);
    let mut next_new = files;
    let mut records = Vec::with_capacity(ops as usize);
    for _ in 0..ops {
        let roll = rng.next_f64();
        let (op, path, rename_to) = if roll < CREATE_SHARE {
            let path = path_of(next_new);
            next_new += 1;
            (MetaOp::Create, path, None)
        } else if roll < CREATE_SHARE + UNLINK_SHARE {
            (MetaOp::Unlink, path_of(rng.below(files)), None)
        } else if roll < CREATE_SHARE + 2.0 * UNLINK_SHARE {
            let target = path_of(next_new);
            next_new += 1;
            (MetaOp::Rename, path_of(rng.below(files)), Some(target))
        } else {
            let file = if rng.next_f64() < HOT_SHARE {
                rng.below(HOT_SET)
            } else {
                rng.below(files)
            };
            (MetaOp::Stat, path_of(file), None)
        };
        records.push(TraceRecord {
            timestamp: SimTime::ZERO,
            op,
            path,
            rename_to,
            user: 0,
            host: 0,
            subtrace: 0,
        });
    }
    records
}

fn build_cluster(files: u64) -> GhbaCluster {
    // Slab-heavy geometry: no L1 level, wide filters, 128 servers — every
    // lookup exercises the bit-sliced batched probe paths, the regime the
    // vectored API is built for.
    let config = GhbaConfig::default()
        .with_filter_capacity(20_000)
        .with_bits_per_file(16.0)
        .with_lru_capacity(0)
        .with_max_group_size(8)
        .with_update_threshold(4_096)
        .with_seed(0x0b);
    let mut cluster = GhbaCluster::with_servers(config, SERVERS);
    populate(&mut cluster, (0..files).map(path_of));
    cluster.flush_all_updates();
    cluster.reset_stats();
    cluster
}

/// The pre-vectored replay loop, verbatim: read runs of up to 16 are
/// resolved through `lookup_batch`, flushed before every mutating record
/// **and** before any repeated path.
fn flush_on_write_replay<S: MetadataService + ?Sized>(
    service: &mut S,
    records: &[TraceRecord],
) -> u64 {
    const LOOKUP_BATCH: usize = 16;
    let mut found = 0u64;
    fn flush<S: MetadataService + ?Sized>(
        service: &mut S,
        pending: &mut Vec<String>,
        found: &mut u64,
    ) {
        if pending.is_empty() {
            return;
        }
        let paths: Vec<&str> = pending.iter().map(String::as_str).collect();
        for outcome in service.lookup_batch(&paths) {
            *found += u64::from(outcome.found());
        }
        pending.clear();
    }
    let mut pending: Vec<String> = Vec::with_capacity(LOOKUP_BATCH);
    for record in records {
        match record.op {
            MetaOp::Open | MetaOp::Close | MetaOp::Stat | MetaOp::Readdir => {
                if pending.contains(&record.path) {
                    flush(service, &mut pending, &mut found);
                }
                pending.push(record.path.clone());
                if pending.len() == LOOKUP_BATCH {
                    flush(service, &mut pending, &mut found);
                }
            }
            MetaOp::Create => {
                flush(service, &mut pending, &mut found);
                service.create(&record.path);
            }
            MetaOp::Unlink => {
                flush(service, &mut pending, &mut found);
                let outcome = service.lookup(&record.path);
                if outcome.level != QueryLevel::Nonexistent {
                    found += 1;
                    service.remove(&record.path);
                }
            }
            MetaOp::Rename => {
                flush(service, &mut pending, &mut found);
                if service.remove(&record.path).is_some() {
                    let target = record
                        .rename_to
                        .clone()
                        .unwrap_or_else(|| format!("{}~renamed", record.path));
                    service.create(&target);
                }
            }
        }
    }
    flush(service, &mut pending, &mut found);
    found
}

fn bench_op_batch(c: &mut Criterion) {
    let files = env_size("GHBA_OP_FILES", DEFAULT_FILES);
    let ops = env_size("GHBA_OP_OPS", DEFAULT_OPS);
    let cluster = build_cluster(files);
    let records = build_trace(files, ops);

    // Sanity: both paths resolve the same trace against the same state.
    {
        let mut a = cluster.clone();
        let mut b = cluster.clone();
        let report = replay(&mut a, records.iter().cloned());
        let legacy_found = flush_on_write_replay(&mut b, &records);
        assert!(report.found > 0 && legacy_found > 0, "trace resolves");
    }

    let mut group = c.benchmark_group("op_batch");
    group.bench_function("replay_mixed_batch", |b| {
        b.iter_batched(
            || cluster.clone(),
            |mut cluster| {
                let report = replay(&mut cluster, records.iter().cloned());
                black_box(report.found)
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("replay_flush_on_write", |b| {
        b.iter_batched(
            || cluster.clone(),
            |mut cluster| black_box(flush_on_write_replay(&mut cluster, &records)),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_op_batch);
criterion_main!(benches);
