//! Ablation: the bits-per-file ratio (m/n) trade-off of Equation 1 —
//! G-HBA's premise is that grouped storage lets it afford a higher ratio,
//! collapsing the false-hit rate of the segment array.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghba_bloom::analysis::{optimal_fpp, segment_false_hit};
use ghba_core::{GhbaCluster, GhbaConfig};
use std::hint::black_box;

fn bench_lookup_by_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("bits_per_file");
    for ratio in [4.0f64, 8.0, 16.0, 24.0] {
        let config = GhbaConfig::default()
            .with_max_group_size(6)
            .with_filter_capacity(2_000)
            .with_bits_per_file(ratio)
            .with_seed(21);
        let mut cluster = GhbaCluster::with_servers(config, 30);
        for i in 0..2_000 {
            cluster.create_file(&format!("/ab/f{i}"));
        }
        cluster.flush_all_updates();
        group.bench_with_input(BenchmarkId::new("lookup", ratio as u64), &ratio, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let outcome = cluster.lookup(black_box(&format!("/ab/f{}", i % 2_000)));
                i += 1;
                outcome
            });
        });
    }
    group.finish();

    println!("\nEq. 1 f+g for θ = 10 replicas:");
    for ratio in [4.0f64, 8.0, 16.0, 24.0] {
        println!(
            "  m/n = {ratio:>4}: f0 = {:.2e}, segment false hit = {:.2e}",
            optimal_fpp(ratio),
            segment_false_hit(10, ratio)
        );
    }
}

criterion_group!(benches, bench_lookup_by_ratio);
criterion_main!(benches);
