//! The PR-4 headline benchmark: the epoch-validated **persistent** mask
//! cache vs the per-batch cache it replaced, on a shim-heavy workload.
//!
//! The workload is the worst case the persistent cache was built for:
//! every lookup arrives through the 1-op **string-call shim** (a fresh
//! `OpBatch` per call), so a per-batch cache is armed, filled, and
//! dropped once *per lookup* — every call rebuilds its entry's L2
//! candidate mask and (on L3 escalation, the common case at this
//! geometry) the whole group-mirror snapshot: member list with held
//! counts, the `N − M` origin scan, and the origin mask. Under
//! `MaskCacheMode::Persistent` those masks are built once per
//! `(entry, group)` per membership epoch and survive across calls, since
//! only reconfiguration can invalidate them.
//!
//! Both sides resolve the same lookup stream over identically populated
//! clusters, so `shim_lookups_per_batch / shim_lookups_persistent` *is*
//! the per-lookup speedup — the ISSUE-4 acceptance bar is ≥ 1.3×. The
//! persistent side's cross-batch hit rate is printed after the run
//! (from `GhbaCluster::mask_cache_stats`) and recorded in the committed
//! `BENCH_PR4.json` snapshot.
//!
//! `GHBA_MASK_FILES` / `GHBA_MASK_LOOKUPS` shrink the namespace and the
//! per-iteration lookup count for CI smoke runs (shrunken numbers are
//! noise).

use criterion::{criterion_group, criterion_main, Criterion};
use ghba::core::{GhbaCluster, GhbaConfig, MaskCacheMode, MetadataService};
use ghba::simnet::DetRng;
use std::hint::black_box;

/// Files pre-populated across the cluster (override: `GHBA_MASK_FILES`).
const DEFAULT_FILES: u64 = 16_000;
/// Shim lookups per iteration (override: `GHBA_MASK_LOOKUPS`).
const DEFAULT_LOOKUPS: u64 = 256;
/// Servers in the simulated cluster (16 groups of 8; slab stride 2).
const SERVERS: usize = 128;

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn path_of(i: u64) -> String {
    format!("/bench/d{}/f{i}", i % 127)
}

fn build_cluster(files: u64, mode: MaskCacheMode) -> GhbaCluster {
    // No L1 level: every shim call reaches the L2/L3 mask machinery —
    // the state under test (same slab-heavy geometry as `op_batch`).
    let config = GhbaConfig::default()
        .with_filter_capacity(20_000)
        .with_bits_per_file(16.0)
        .with_lru_capacity(0)
        .with_max_group_size(8)
        .with_update_threshold(4_096)
        .with_mask_cache(mode)
        .with_seed(0x0b);
    let mut cluster = GhbaCluster::with_servers(config, SERVERS);
    ghba::replay::populate(&mut cluster, (0..files).map(path_of));
    cluster.flush_all_updates();
    cluster.reset_stats();
    cluster
}

/// Drives `lookups` string-shim calls (1-op batches) against `cluster`,
/// cycling deterministically through the populated namespace.
fn shim_lookups(cluster: &mut GhbaCluster, paths: &[String], cursor: &mut usize) -> u64 {
    let mut found = 0u64;
    for _ in 0..paths.len() {
        let path = &paths[*cursor % paths.len()];
        *cursor += 1;
        // The trait shim, not the inherent walk: each call admits a fresh
        // 1-op `OpBatch` — the amortization boundary under test.
        found += u64::from(MetadataService::lookup(cluster, path).found());
    }
    found
}

fn bench_mask_epoch(c: &mut Criterion) {
    let files = env_size("GHBA_MASK_FILES", DEFAULT_FILES);
    let lookups = env_size("GHBA_MASK_LOOKUPS", DEFAULT_LOOKUPS);
    let mut rng = DetRng::new(0x4E);
    let paths: Vec<String> = (0..lookups).map(|_| path_of(rng.below(files))).collect();

    let mut persistent = build_cluster(files, MaskCacheMode::Persistent);
    let mut per_batch = build_cluster(files, MaskCacheMode::PerBatch);

    // Sanity: identical outcomes on both sides.
    {
        let (mut a, mut b) = (persistent.clone(), per_batch.clone());
        let (mut ca, mut cb) = (0usize, 0usize);
        let fa = shim_lookups(&mut a, &paths, &mut ca);
        let fb = shim_lookups(&mut b, &paths, &mut cb);
        assert_eq!(fa, fb, "cache modes must agree on outcomes");
        assert!(fa > 0, "stream resolves");
    }

    let mut group = c.benchmark_group("mask_epoch");
    let mut cursor = 0usize;
    group.bench_function("shim_lookups_persistent", |b| {
        b.iter(|| black_box(shim_lookups(&mut persistent, &paths, &mut cursor)));
    });
    let mut cursor = 0usize;
    group.bench_function("shim_lookups_per_batch", |b| {
        b.iter(|| black_box(shim_lookups(&mut per_batch, &paths, &mut cursor)));
    });
    group.finish();

    let (hits, misses) = persistent.mask_cache_stats().lifetime();
    let (pb_hits, pb_misses) = per_batch.mask_cache_stats().lifetime();
    eprintln!(
        "mask_epoch: persistent cache {hits} hits / {misses} misses \
         (hit rate {:.4}); per-batch {pb_hits} hits / {pb_misses} misses",
        hits as f64 / (hits + misses).max(1) as f64
    );
}

criterion_group!(benches, bench_mask_epoch);
criterion_main!(benches);
