//! The PR-9 headline benchmark: the online M* controller vs a static
//! group size on the diurnal + flash-crowd load curve.
//!
//! **The question** (paper fig6/fig7, used *online*): an operator sized
//! a 48-server cluster with groups of 16 — far above M* ≈ √48 ≈ 7 — and
//! the traffic has a day shape: a night trough, a morning ramp, a
//! working-day plateau, a 6× flash crowd focused on one region, and a
//! cooldown whose skew migrates to a second region
//! ([`LoadCurve::diurnal_flash`]). The *adaptive* run gives the cluster
//! the [`GroupController`] (PaperModel target), ticking once per
//! traffic window on the cluster's own [`load_report`] telemetry and
//! actuating through the lock-free [`ReconfigHandle`]; the *static* run
//! serves the identical deterministic workload with the shape frozen.
//!
//! **Throughput metric.** Wall-clock per-lookup cost in this codebase
//! barely depends on group size (slab probes are O(N) bit-ops either
//! way); what group size really moves is how much *simulated service
//! time* each walk pins on each server — the paper's own cost model.
//! So each completed lookup is charged to servers from the cluster's
//! [`LatencyModel`] and the observed resolution level:
//!
//! * the entry server pays its own L2 array probe
//!   (`array_probe(held+1, spill)` — the walk's exact formula), plus
//!   the multicast fan-out/aggregation overhead
//!   (`multicast_per_member × (M−1)`) when the walk escalates to L3
//!   (× N−M more at L4);
//! * every *other member* of the entry's group pays its own array
//!   probe for each L3 walk entering the group (each L4 walk charges
//!   all remaining servers too).
//!
//! A window's simulated makespan is the busiest server's total — the
//! bottleneck that gates a saturated cluster — and throughput is
//! lookups per simulated second, `Σops / Σmakespan`. Oversized groups
//! lose because every L3 walk drags 15 peers through probes and the
//! coordinator through 15 fan-out slots; the controller's splits cut
//! both on exactly the groups carrying the heat. Splitting *below* M*
//! would backfire (each member holds more filters, probes lengthen,
//! and past the √N resident budget they hit disk) — which is why the
//! handle's split floor and the M* merge cap exist. The metric is
//! deterministic: the workload is seeded per (window, index), windows
//! are barriers, so both runs and the ratio reproduce bit-identically
//! on any host and any thread count.
//!
//! **Wall-clock honesty.** Completions are also bucketed into 25 ms
//! wall windows; a complete bucket with zero completions is a stall.
//! The adaptive run must never stall: every reconfiguration publishes
//! through the snapshot cell while readers keep resolving (and every
//! lookup's answer is asserted against ground truth *during* the
//! churn). Wall ops/s is printed for context only — on a 1-core host
//! readers time-slice one CPU and the number says nothing about group
//! size.
//!
//! **Mask-cache bar.** After a warmup, every report window must show a
//! mask-consult hit rate ≥ 0.99 on every group the controller never
//! touched: per-group epochs keep untouched groups' mask caches warm
//! through other groups' splits.
//!
//! On a full-length run (`GHBA_ADAPT_WINDOWS` ≥ 50, the default 100)
//! the acceptance bars are asserted: adaptive/static simulated
//! throughput ≥ 1.3×, zero adaptive stall windows, ≥ 2 accepted
//! controller actions (the flash split and the migrated cooldown
//! split), and the untouched-group mask bar. Short runs
//! (`CRITERION_MEASURE_MS` smoke) only prove the harness executes.
//! `GHBA_ADAPT_OPS` scales per-window traffic, `GHBA_ADAPT_FILES` the
//! namespace, `GHBA_ADAPT_READERS` the reader pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ghba::core::{
    AdaptAction, ControllerConfig, GhbaCluster, GhbaConfig, GroupController, GroupId, LoadReport,
    MdsId, QueryLevel,
};
use ghba::simnet::DetRng;
use ghba::trace::LoadCurve;

/// Wall-clock bucket for stall detection.
const WINDOW_MS: u64 = 25;
/// Servers in the cluster.
const SERVERS: u16 = 48;
/// The static (oversized) group size; M* for 48 servers is ≈ 7.
const MAX_GROUP: usize = 16;
/// Report windows to skip before asserting the mask bar (cold caches).
const MASK_WARMUP: u64 = 8;

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn path_of(i: u64) -> String {
    format!("/adapt/d{}/f{i}", i % 113)
}

/// Per-server simulated service costs under one routing shape, rebuilt
/// after every controller tick from the cluster's own latency model
/// and per-member held counts.
struct ShapeCosts {
    /// Group index by entry server.
    group_of: Vec<usize>,
    /// Member ids per group.
    groups: Vec<Vec<u16>>,
    /// `array_probe(held+1, held−resident)` per server, in ns.
    probe_ns: Vec<u64>,
    /// L3 coordinator overhead per group: `multicast_per_member × (M−1)`, ns.
    fanout_l3_ns: Vec<u64>,
    /// Extra L4 coordinator overhead per group: `multicast_per_member × (N−M)`, ns.
    fanout_l4_ns: Vec<u64>,
}

impl ShapeCosts {
    fn snapshot(cluster: &GhbaCluster) -> ShapeCosts {
        let model = &cluster.config().latency;
        let handle = cluster.reconfig_handle();
        let n = usize::from(SERVERS);
        let mut costs = ShapeCosts {
            group_of: vec![0; n],
            groups: Vec::new(),
            probe_ns: vec![0; n],
            fanout_l3_ns: Vec::new(),
            fanout_l4_ns: Vec::new(),
        };
        for gid in handle.group_ids() {
            let members = handle.group_members(gid).unwrap_or_default();
            let g = costs.groups.len();
            for &m in &members {
                let held = cluster.replicas_held_by(m).len();
                let resident = cluster.mds(m).expect("live member").resident_replicas(held);
                costs.group_of[usize::from(m.0)] = g;
                costs.probe_ns[usize::from(m.0)] =
                    model.array_probe(held + 1, held - resident).as_nanos() as u64;
            }
            let fan = |peers: usize| {
                (model.multicast_per_member * u32::try_from(peers).unwrap_or(u32::MAX)).as_nanos()
                    as u64
            };
            costs
                .fanout_l3_ns
                .push(fan(members.len().saturating_sub(1)));
            costs.fanout_l4_ns.push(fan(n - members.len()));
            costs.groups.push(members.iter().map(|m| m.0).collect());
        }
        costs
    }

    /// Charges one completed lookup to the per-server busy table.
    fn charge(&self, entry: u16, level: QueryLevel, busy_ns: &mut [u64]) {
        let g = self.group_of[usize::from(entry)];
        let (l3, l4) = match level {
            QueryLevel::L1Lru | QueryLevel::L2Segment => (false, false),
            QueryLevel::L3Group => (true, false),
            QueryLevel::L4Global | QueryLevel::Nonexistent => (true, true),
        };
        let mut coordinator = self.probe_ns[usize::from(entry)];
        if l3 {
            coordinator += self.fanout_l3_ns[g];
            for &m in &self.groups[g] {
                if m != entry {
                    busy_ns[usize::from(m)] += self.probe_ns[usize::from(m)];
                }
            }
        }
        if l4 {
            coordinator += self.fanout_l4_ns[g];
            for (s, probe) in self.probe_ns.iter().enumerate() {
                if self.group_of[s] != g {
                    busy_ns[s] += probe;
                }
            }
        }
        busy_ns[usize::from(entry)] += coordinator;
    }
}

/// What one run measured.
struct Run {
    lookups: u64,
    /// Σ of per-window bottleneck-server busy time (simulated).
    makespan_ns: u64,
    /// Simulated busy time per phase (name, Σmakespan, lookups).
    phases: Vec<(&'static str, u64, u64)>,
    /// Complete 25 ms wall windows with zero completions.
    stalls: u64,
    wall: Duration,
    /// Accepted controller actions (window, action).
    actions: Vec<(u64, AdaptAction)>,
    /// One load report per controller tick (adaptive runs only).
    reports: Vec<LoadReport>,
    final_groups: usize,
}

impl Run {
    /// Lookups per *simulated* second — the host-independent headline.
    fn sim_throughput(&self) -> f64 {
        self.lookups as f64 / (self.makespan_ns as f64 / 1e9).max(1e-12)
    }
}

/// Serves the full curve once. `controller` drives the adaptive run;
/// `None` freezes the static shape. Everything else — files, truths,
/// seeds, window schedule — is identical between the two.
#[allow(clippy::too_many_arguments)]
fn serve_curve(
    cluster: &GhbaCluster,
    mut controller: Option<GroupController>,
    curve: &LoadCurve,
    truths: &[MdsId],
    region_a: &[u16],
    region_b: &[u16],
    windows: u64,
    base_ops: u64,
    readers: u64,
    seed: u64,
) -> Run {
    let n = usize::from(SERVERS);
    let files = truths.len() as u64;
    let peak_idx = curve
        .phases()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.intensity.total_cmp(&b.1.intensity))
        .map_or(0, |(i, _)| i);
    let bucket_count = 1 << 16;
    let buckets: Vec<AtomicU64> = (0..bucket_count).map(|_| AtomicU64::new(0)).collect();
    let start = Instant::now();

    let mut run = Run {
        lookups: 0,
        makespan_ns: 0,
        phases: curve.phases().iter().map(|p| (p.name, 0, 0)).collect(),
        stalls: 0,
        wall: Duration::ZERO,
        actions: Vec::new(),
        reports: Vec::new(),
        final_groups: 0,
    };

    for w in 0..windows {
        let costs = ShapeCosts::snapshot(cluster);
        let t = (w as f64 + 0.5) / windows as f64;
        let phase = curve.phase_at(t);
        let phase_idx = curve
            .phases()
            .iter()
            .position(|p| core::ptr::eq(p, phase))
            .unwrap_or(0);
        let region: &[u16] = if phase_idx <= peak_idx {
            region_a
        } else {
            region_b
        };
        let offered = (base_ops as f64 * phase.intensity).round() as u64;
        let next = AtomicU64::new(0);

        // One window: readers drain the offered quota, charging
        // simulated service time locally; the window is a barrier, so
        // the charge table and the controller never race a walk.
        let busy = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let (next, costs, buckets) = (&next, &costs, &buckets);
                    scope.spawn(move || {
                        let mut busy_ns = vec![0u64; n];
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= offered {
                                break;
                            }
                            let mut rng = DetRng::new(seed ^ (w << 24)).fork(i);
                            let entry = if rng.chance(phase.hot_focus) {
                                region[rng.index(region.len())]
                            } else {
                                rng.below(u64::from(SERVERS)) as u16
                            };
                            let file = rng.below(files);
                            let outcome = cluster.lookup_concurrent(MdsId(entry), &path_of(file));
                            assert_eq!(
                                outcome.home,
                                Some(truths[file as usize]),
                                "window {w}: wrong home for file {file} during churn"
                            );
                            costs.charge(entry, outcome.level, &mut busy_ns);
                            let idx = start.elapsed().as_millis() as u64 / WINDOW_MS;
                            if let Some(bucket) = buckets.get(idx as usize) {
                                bucket.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        busy_ns
                    })
                })
                .collect();
            let mut busy = vec![0u64; n];
            for handle in handles {
                for (total, part) in busy.iter_mut().zip(handle.join().expect("reader")) {
                    *total += part;
                }
            }
            busy
        });

        let makespan = busy.into_iter().max().unwrap_or(0);
        run.lookups += offered;
        run.makespan_ns += makespan;
        run.phases[phase_idx].1 += makespan;
        run.phases[phase_idx].2 += offered;

        if let Some(controller) = controller.as_mut() {
            let report = cluster.load_report();
            let handle = cluster.reconfig_handle();
            for action in controller.actuate(&report, &handle) {
                run.actions.push((w, action));
            }
            run.reports.push(report);
        }
    }

    run.wall = start.elapsed();
    let complete = (run.wall.as_millis() as u64 / WINDOW_MS) as usize;
    run.stalls = buckets[..complete.min(buckets.len())]
        .iter()
        .filter(|b| b.load(Ordering::Relaxed) == 0)
        .count() as u64;
    run.final_groups = cluster.group_count();
    run
}

/// Groups alive at the first report that no accepted action ever
/// named (split origin, merge partner, rebalance target) and that no
/// split minted mid-run.
fn untouched_groups(run: &Run) -> Vec<GroupId> {
    let Some(first) = run.reports.first() else {
        return Vec::new();
    };
    first
        .groups
        .iter()
        .map(|g| g.gid)
        .filter(|gid| {
            !run.actions.iter().any(|(_, a)| {
                let (x, y) = a.touches();
                x == *gid || y == Some(*gid)
            })
        })
        .collect()
}

fn main() {
    let windows = env_size(
        "GHBA_ADAPT_WINDOWS",
        if env_size("CRITERION_MEASURE_MS", 1_200) >= 600 {
            100
        } else {
            10
        },
    );
    let base_ops = env_size("GHBA_ADAPT_OPS", 1_500);
    let files = env_size("GHBA_ADAPT_FILES", 6_000);
    let readers = env_size("GHBA_ADAPT_READERS", 2);
    let full = windows >= 50;
    let curve = LoadCurve::diurnal_flash();

    let build = || {
        let config = GhbaConfig::default()
            .with_filter_capacity(20_000)
            .with_lru_capacity(0)
            .with_max_group_size(MAX_GROUP)
            .with_seed(0x9AD);
        let mut cluster = GhbaCluster::with_servers(config, usize::from(SERVERS));
        ghba::replay::populate(&mut cluster, (0..files).map(path_of));
        cluster.flush_all_updates();
        cluster
    };
    let template = build();
    let truths: Vec<MdsId> = (0..files)
        .map(|i| template.true_home(&path_of(i)).expect("created"))
        .collect();
    // Hot regions are *server sets*, frozen before any reshaping: the
    // flash crowd hits the first group's members, the cooldown skew
    // the last group's.
    let handle = template.reconfig_handle();
    let gids = handle.group_ids();
    let members = |gid| -> Vec<u16> {
        handle
            .group_members(gid)
            .unwrap_or_default()
            .iter()
            .map(|m| m.0)
            .collect()
    };
    let region_a = members(*gids.first().expect("grouped"));
    let region_b = members(*gids.last().expect("grouped"));
    drop(handle);
    drop(template);

    let serve = |controller: Option<GroupController>| {
        let cluster = build();
        serve_curve(
            &cluster,
            controller,
            &curve,
            &truths,
            &region_a,
            &region_b,
            windows,
            base_ops,
            readers,
            0x000A_DA97,
        )
    };
    let stat = serve(None);
    let adaptive = serve(Some(GroupController::new(ControllerConfig::default())));
    let ratio = adaptive.sim_throughput() / stat.sim_throughput().max(1e-12);

    for (mode, run) in [("static", &stat), ("adaptive", &adaptive)] {
        eprintln!(
            "adaptive_groups/{mode}: {:.0} lookups/sim-s over {} lookups \
             ({:.1} ms simulated, {} groups at end, {} actions, {} stall windows, wall {:?})",
            run.sim_throughput(),
            run.lookups,
            run.makespan_ns as f64 / 1e6,
            run.final_groups,
            run.actions.len(),
            run.stalls,
            run.wall,
        );
        for (name, makespan, lookups) in &run.phases {
            eprintln!(
                "adaptive_groups/{mode}/{name}: {lookups} lookups, {:.2} ms simulated makespan",
                *makespan as f64 / 1e6
            );
        }
    }
    for (w, action) in &adaptive.actions {
        eprintln!("adaptive_groups/adaptive: window {w}: accepted {action:?}");
    }
    eprintln!("adaptive_groups: adaptive/static simulated throughput ratio {ratio:.2}x");

    // Mask bar: untouched groups stay ≥ 0.99 hit rate in every
    // post-warmup report window.
    let untouched = untouched_groups(&adaptive);
    let mut min_mask: f64 = 1.0;
    for report in adaptive.reports.iter().filter(|r| r.window > MASK_WARMUP) {
        for gid in &untouched {
            if let Some(row) = report.group(*gid) {
                min_mask = min_mask.min(row.mask_hit_rate);
            }
        }
    }
    eprintln!(
        "adaptive_groups: untouched groups {untouched:?} min mask hit rate {min_mask:.4} \
         across {} post-warmup report windows",
        adaptive.reports.len().saturating_sub(MASK_WARMUP as usize)
    );

    if full {
        assert!(
            adaptive.actions.len() >= 2,
            "the flash and the migrated cooldown skew must both actuate, got {:?}",
            adaptive.actions
        );
        assert_eq!(
            adaptive.stalls, 0,
            "lookups must never flatline through controller-driven reconfigs"
        );
        assert!(
            ratio >= 1.3,
            "adaptive must beat the oversized static shape by >= 1.3x, got {ratio:.2}x"
        );
        assert!(
            !untouched.is_empty(),
            "some group must have been left alone"
        );
        assert!(
            min_mask >= 0.99,
            "untouched groups' mask caches must stay warm through reconfigs, got {min_mask:.4}"
        );
        assert!(
            stat.actions.is_empty() && stat.final_groups == 3,
            "the static run must not reshape anything"
        );
    }
}
