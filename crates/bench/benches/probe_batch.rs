//! The PR-2 headline benchmark: batched vs sequential slab probes, plus
//! the publish path's sparse delta application vs full column rewrite.
//!
//! Two questions, same geometry as `array_compare` (N same-shape filters,
//! 16 bits/file, k = 11):
//!
//! * **Batched probes** — resolving 16 concurrent lookups through one
//!   [`SharedShapeArray::query_batch`] slab pass (`batch_x16`) vs 16
//!   independent [`SharedShapeArray::query_fp`] walks (`sequential_x16`).
//!   Both benches do 16 lookups per iteration, so their means compare
//!   directly and `sequential_x16 / batch_x16` *is* the per-lookup
//!   speedup. The win comes from up-front fastmod row derivation,
//!   software-prefetching upcoming fingerprints' rows while the current
//!   one reduces, and register-resident SIMD mask reduction — so the
//!   cache misses of different lookups overlap instead of queueing.
//! * **Publish cost** — refreshing one slot of the published slab via
//!   [`SharedShapeArray::apply_delta`] (cost ∝ changed words) vs
//!   [`SharedShapeArray::replace_filter`] (O(m) rows cleared and
//!   rewritten), at a small (1-file) and a large (512-file) churn since
//!   the last publish.
//!
//! Run with `CRITERION_JSON=BENCH_PR2.json cargo bench --bench
//! probe_batch` to dump machine-readable means (see `BENCH_PR2.json` at
//! the repo root for the committed trajectory snapshot, and
//! `EXPERIMENTS.md` for how these numbers are read).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghba_bloom::{BloomFilter, FilterDelta, Fingerprint, ProbeBatch, SharedShapeArray};
use std::hint::black_box;

/// Files summarized per filter — the paper's "ultra large-scale" regime
/// (hundreds of thousands of files per MDS), which at N = 1024 puts the
/// bit-sliced slab well past the last-level cache: every probe row is a
/// DRAM access, the regime the batched pass is built for. Override with
/// `GHBA_PROBE_ITEMS` (CI smoke uses a small value to bound build time;
/// committed BENCH_PR2.json numbers use the default).
const DEFAULT_ITEMS_PER_FILTER: u64 = 200_000;
const HASHES: u32 = 11;
const SEED: u64 = 0x9;
/// Concurrent lookups resolved per slab pass.
const BATCH: usize = 16;

fn items_per_filter() -> u64 {
    std::env::var("GHBA_PROBE_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITEMS_PER_FILTER)
}

/// Filter geometry: 16 bits per file (k = 11, the paper's ratio).
fn bits_per_filter() -> usize {
    (items_per_filter() as usize) * 16
}

fn path_of(id: u16, i: u64) -> String {
    format!("/mds{id}/dir{}/file-{i}.dat", i % 97)
}

fn build_sliced(n: u16) -> SharedShapeArray<u16> {
    let items = items_per_filter();
    let mut array = SharedShapeArray::with_capacity(
        ghba_bloom::FilterShape {
            bits: bits_per_filter(),
            hashes: HASHES,
            seed: SEED,
        },
        usize::from(n),
    );
    for id in 0..n {
        array.push(id).expect("distinct ids");
        for i in 0..items {
            array
                .insert_fp(id, &ghba_bloom::Fingerprint::of(&path_of(id, i)))
                .expect("id just pushed");
        }
    }
    array
}

fn bench_probe_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_batch");
    for n in [16u16, 128, 1024] {
        let sliced = build_sliced(n);
        // Probe items resident in exactly one filter, cycling homes — the
        // unique-hit pattern the G-HBA hierarchy is tuned for. The
        // fingerprints are precomputed: at every level past the entry
        // point they arrive with the query (hash-once design), so the
        // comparison isolates the slab walk itself.
        // A wide probe stream: concurrent lookups land anywhere in the
        // namespace, so the stream must be far larger than what the cache
        // can retain of the slab (512 repeating probes would leave every
        // probed row cache-resident after warmup, hiding the memory
        // behaviour both paths really see in production).
        let items = items_per_filter();
        let fps: Vec<Fingerprint> = (0..65_536u64)
            .map(|i| Fingerprint::of(&path_of((i % u64::from(n)) as u16, i * 31 % items)))
            .collect();

        group.bench_with_input(BenchmarkId::new("sequential_x16", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let mut positives = 0usize;
                for j in 0..BATCH {
                    let fp = &fps[(i + j) % fps.len()];
                    positives += sliced.query_fp(black_box(fp)).candidates().len();
                }
                i += BATCH;
                positives
            });
        });
        group.bench_with_input(BenchmarkId::new("batch_x16", n), &n, |b, _| {
            let mut i = 0usize;
            let mut batch = ProbeBatch::with_capacity(BATCH);
            b.iter(|| {
                batch.clear();
                for j in 0..BATCH {
                    batch.push(fps[(i + j) % fps.len()]);
                }
                i += BATCH;
                let hits = sliced.query_batch(black_box(&mut batch));
                hits.iter().map(|h| h.candidates().len()).sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_publish_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("publish_path");
    let n = 1024u16;
    let mut sliced = build_sliced(n);
    // Slot 0's published snapshot, plus two refreshed versions: one file
    // of churn (the common per-publish case) and 512 files of churn.
    let items = items_per_filter();
    let mut old = BloomFilter::new(bits_per_filter(), HASHES, SEED);
    for i in 0..items {
        old.insert(&path_of(0, i));
    }
    for churn in [1u64, 512] {
        let mut fresh = old.clone();
        for i in 0..churn {
            fresh.insert(&path_of(0, items + i));
        }
        let delta = FilterDelta::between(&old, &fresh).expect("same shape");
        group.bench_with_input(
            BenchmarkId::new("full_column_rewrite", churn),
            &churn,
            |b, _| {
                b.iter(|| sliced.replace_filter(0, black_box(&fresh)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(&format!("apply_delta_{}w", delta.len()), churn),
            &churn,
            |b, _| {
                b.iter(|| sliced.apply_delta(0, black_box(&delta)));
            },
        );
        // Restore slot 0 so the next churn level starts from `old`.
        sliced.replace_filter(0, &old).expect("slot 0 exists");
    }
    group.finish();
}

criterion_group!(benches, bench_probe_batch, bench_publish_path);
criterion_main!(benches);
