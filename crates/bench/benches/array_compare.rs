//! The PR-1 headline benchmark: N-filter array membership probes.
//!
//! Compares three implementations of "probe an array of N same-shape Bloom
//! filters with one item" at N ∈ {16, 128, 1024}:
//!
//! * `legacy_rehash` — the seed behaviour: every filter re-hashes the item
//!   bytes and walks its own bit vector (`O(N·|item|)` hashing);
//! * `fingerprint` — [`BloomFilterArray::query`]: the item is digested once
//!   into a [`Fingerprint`] and each filter's probe stream is derived by
//!   O(1) seed-mixing (still N bit-vector walks);
//! * `bitsliced` — [`SharedShapeArray::query`]: hash-once plus the
//!   bit-sliced slab, so the whole array costs `k` word-row loads and an
//!   AND-reduction.
//!
//! Run with `CRITERION_JSON=BENCH_PR1.json cargo bench --bench
//! array_compare` to dump machine-readable means (see `BENCH_PR1.json` at
//! the repo root for the committed trajectory snapshot).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ghba_bloom::{BloomFilter, BloomFilterArray, Fingerprint, SharedShapeArray};
use std::hint::black_box;

/// Files summarized per filter.
const ITEMS_PER_FILTER: u64 = 2_000;
/// Filter geometry: 16 bits per file, k = 11 (the paper's ratio).
const BITS_PER_FILTER: usize = 32_000;
const HASHES: u32 = 11;
const SEED: u64 = 0x9;

fn path_of(id: u16, i: u64) -> String {
    format!("/mds{id}/dir{}/file-{i}.dat", i % 97)
}

fn build_filters(n: u16) -> Vec<(u16, BloomFilter)> {
    (0..n)
        .map(|id| {
            let mut filter = BloomFilter::new(BITS_PER_FILTER, HASHES, SEED);
            for i in 0..ITEMS_PER_FILTER {
                filter.insert(&path_of(id, i));
            }
            (id, filter)
        })
        .collect()
}

/// The seed's per-filter walk: every filter hashes the item from scratch.
fn legacy_query(entries: &[(u16, BloomFilter)], item: &str) -> u32 {
    let mut positives = 0u32;
    for (_, filter) in entries {
        if filter.contains(item) {
            positives += 1;
        }
    }
    positives
}

fn bench_array_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_compare");
    for n in [16u16, 128, 1024] {
        let entries = build_filters(n);
        let array: BloomFilterArray<u16> = entries.iter().cloned().collect();
        let sliced = SharedShapeArray::from_filters(entries.iter().cloned())
            .expect("filters share one shape");
        // Probe items resident in exactly one filter, cycling homes — the
        // unique-hit pattern every level of the G-HBA hierarchy is tuned
        // for.
        let probes: Vec<String> = (0..512u64)
            .map(|i| path_of((i % u64::from(n)) as u16, i % ITEMS_PER_FILTER))
            .collect();

        group.bench_with_input(BenchmarkId::new("legacy_rehash", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let hits = legacy_query(&entries, black_box(&probes[i % probes.len()]));
                i += 1;
                hits
            });
        });
        group.bench_with_input(BenchmarkId::new("fingerprint", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let hit = array.query(black_box(&*probes[i % probes.len()]));
                i += 1;
                hit
            });
        });
        group.bench_with_input(BenchmarkId::new("bitsliced", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let hit = sliced.query(black_box(&*probes[i % probes.len()]));
                i += 1;
                hit
            });
        });
        group.bench_with_input(BenchmarkId::new("bitsliced_reused_fp", n), &n, |b, _| {
            // The escalation case: the fingerprint was already computed at
            // a lower level (or arrived inside a multicast message).
            let fps: Vec<Fingerprint> = probes.iter().map(|p| Fingerprint::of(&**p)).collect();
            let mut i = 0usize;
            b.iter(|| {
                let hit = sliced.query_fp(black_box(&fps[i % fps.len()]));
                i += 1;
                hit
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_array_compare);
criterion_main!(benches);
