//! Lock-free snapshot concurrency for the mirror-based baselines:
//! HBA/BFA lookups served *through* retire/restore reconfiguration.
//!
//! Counterpart of the G-HBA `concurrency` suite in `ghba-core`:
//!
//! * **Stress** — reader threads hammer the side-effect-free
//!   `lookup_concurrent` walk while an [`HbaReconfigHandle`] oscillates
//!   a victim server's published mirror out of and back into the array.
//!   Lookups must keep resolving the true home (via the array when the
//!   mirror is live, via broadcast while it is retired).
//! * **Degradation** — with a mirror retired and no restore racing, the
//!   walk provably falls back to the broadcast level and still resolves.
//! * **Equivalence** — with no reconfiguration interleaving, the
//!   snapshot-pinned concurrent walk is bit-identical to the mutating
//!   barrier-style walk for both HBA and BFA, query by query.

use std::sync::atomic::{AtomicBool, Ordering};

use ghba_baselines::{BfaCluster, HbaCluster};
use ghba_core::{GhbaConfig, MdsId, QueryLevel};

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_filter_capacity(2_000)
        .with_seed(37)
}

/// Readers resolve concurrently while the handle oscillates one mirror
/// per round out of and back into the published array. Every outcome
/// must still name the ground-truth home — through the array when the
/// victim's mirror is live, through broadcast while it is retired — at
/// whatever epoch the reader happened to pin.
#[test]
fn hba_lookups_resolve_through_retire_restore_churn() {
    let mut cluster = HbaCluster::with_servers(config(), 8);
    let paths: Vec<String> = (0..120).map(|i| format!("/churn/f{i}")).collect();
    for path in &paths {
        cluster.create_file(path);
    }
    cluster.flush_all_updates();
    let truths: Vec<MdsId> = paths
        .iter()
        .map(|p| cluster.true_home(p).expect("created"))
        .collect();
    let handle = cluster.reconfig_handle();
    let start_epoch = handle.epoch();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let cluster = &cluster;
        let truths = &truths;
        let paths = &paths;
        let stop = &stop;
        let readers: Vec<_> = (0..2)
            .map(|r| {
                scope.spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        for (i, path) in paths.iter().enumerate() {
                            let entry = MdsId(((i + r * 3) % 8) as u16);
                            let outcome = cluster.lookup_concurrent(entry, path);
                            assert_eq!(
                                outcome.home,
                                Some(truths[i]),
                                "concurrent lookup lost {path} mid-retire"
                            );
                            assert!(
                                outcome.epoch >= start_epoch,
                                "pinned an epoch older than the pre-churn snapshot"
                            );
                            seen += 1;
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();

        // Churn: pull a different mirror out of the published array each
        // round, then push it straight back — two successor-snapshot
        // publishes per round, racing the readers above.
        for round in 0..10u16 {
            let victim = MdsId(round % 8);
            let filter = handle.retire_mds(victim).expect("victim is published");
            assert!(handle.restore_mds(victim, &filter), "victim restores");
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("reader panicked") > 0);
        }
    });

    assert!(
        handle.epoch() > start_epoch,
        "the churn loop should have published at least one reconfiguration"
    );
    // The owner's mutating paths must be coherent with the final
    // (fully restored) published array.
    for (i, path) in paths.iter().enumerate() {
        assert_eq!(cluster.lookup_from(MdsId(0), path).home, Some(truths[i]));
    }
}

/// With a mirror retired and nothing racing, lookups homed at the
/// victim provably degrade to the broadcast level yet still resolve;
/// restoring the saved filter brings the array level back. Double
/// retire and double restore are refused.
#[test]
fn hba_retired_mirror_degrades_to_broadcast() {
    let config = config().with_lru_capacity(0); // pin walks past L1
    let mut cluster = HbaCluster::with_servers(config, 6);
    let paths: Vec<String> = (0..80).map(|i| format!("/deg/f{i}")).collect();
    for path in &paths {
        cluster.create_file(path);
    }
    cluster.flush_all_updates();
    let victim = cluster.true_home(&paths[0]).expect("created");
    let entry = MdsId(u16::from(victim.0 == 0));

    let handle = cluster.reconfig_handle();
    let filter = handle.retire_mds(victim).expect("first retire succeeds");
    assert!(
        handle.retire_mds(victim).is_none(),
        "double retire must be refused"
    );

    for path in &paths {
        let truth = cluster.true_home(path).expect("created");
        let outcome = cluster.lookup_concurrent(entry, path);
        assert_eq!(outcome.home, Some(truth), "{path} lost while retired");
        if truth == victim && entry != victim {
            assert_eq!(
                outcome.level,
                QueryLevel::L4Global,
                "{path} homed at the retired mirror must broadcast"
            );
        }
    }

    assert!(handle.restore_mds(victim, &filter), "restore succeeds");
    assert!(
        !handle.restore_mds(victim, &filter),
        "double restore must be refused"
    );
    let outcome = cluster.lookup_concurrent(entry, &paths[0]);
    assert_eq!(outcome.home, Some(victim));
    assert_ne!(
        outcome.level,
        QueryLevel::L4Global,
        "restored mirror serves from the array again"
    );
}

/// With no reconfiguration interleaving, the side-effect-free
/// concurrent walk is bit-identical — home, level, latency, messages,
/// epoch — to the mutating walk for both HBA and BFA. The concurrent
/// walk runs first so both observe the same LRU state; the mutating
/// walk's fill then advances the state for the next pair.
#[test]
fn concurrent_walk_matches_barrier_walk_without_churn() {
    // HBA: LRU + array + broadcast levels all exercised.
    let mut hba = HbaCluster::with_servers(config(), 9);
    for i in 0..90 {
        hba.create_file(&format!("/eq/f{i}"));
    }
    hba.flush_all_updates();
    for i in 0..200 {
        let entry = MdsId((i % 9) as u16);
        let path = if i % 7 == 6 {
            format!("/eq/absent{i}")
        } else {
            format!("/eq/f{}", i * 3 % 90)
        };
        let concurrent = hba.lookup_concurrent(entry, &path);
        let barrier = hba.lookup_from(entry, &path);
        assert_eq!(concurrent, barrier, "HBA walks diverged at query {i}");
    }

    // BFA: the same property with the LRU level disabled by construction.
    let mut bfa = BfaCluster::with_servers(config(), 9, 8.0);
    for i in 0..90 {
        bfa.inner_mut().create_file(&format!("/eq/f{i}"));
    }
    bfa.inner_mut().flush_all_updates();
    for i in 0..200 {
        let entry = MdsId((i % 9) as u16);
        let path = if i % 7 == 6 {
            format!("/eq/absent{i}")
        } else {
            format!("/eq/f{}", i * 3 % 90)
        };
        let concurrent = bfa.lookup_concurrent(entry, &path);
        let barrier = bfa.inner_mut().lookup_from(entry, &path);
        assert_eq!(concurrent, barrier, "BFA walks diverged at query {i}");
    }
}

/// The pin-once `execute_concurrent` pipeline matches the `&mut self`
/// funnel for mixed HBA batches, and after `drain_concurrent` + flush
/// both clusters converge to the same homes. Epochs are excluded from
/// the comparison (the two pipelines publish mirrors at different
/// cadences); L1 is disabled because the pinned walk never fills the
/// LRU, and removes sit at the tail of each batch so no in-batch
/// lookup races a pending remove of the same fingerprint.
#[test]
fn hba_concurrent_pipeline_matches_funnel() {
    use ghba_core::{EntryPolicy, MetadataService, OpBatch, OpOutcome};

    let cfg = config()
        .with_lru_capacity(0)
        .with_update_threshold(1 << 24)
        .with_write_shards(4);
    let mut funnel = HbaCluster::with_servers(cfg.clone(), 10);
    let mut pinned = HbaCluster::with_servers(cfg, 10);

    let mut live: Vec<String> = (0..25).map(|i| format!("/hmix/seed{i}")).collect();
    for path in &live {
        funnel.create_file(path);
        pinned.create_file(path);
    }
    funnel.flush_all_updates();
    pinned.flush_all_updates();

    for round in 0..4 {
        let rename_src = live.remove(0);
        let remove_tgt = live.remove(0);
        let moved = format!("/hmix/r{round}/moved");
        let created: Vec<String> = (0..5).map(|j| format!("/hmix/r{round}/f{j}")).collect();

        let mut batch = OpBatch::new().with_entry(EntryPolicy::Random);
        for path in live.iter().take(5) {
            batch.push_lookup(path);
        }
        for path in &created {
            batch.push_create(path);
        }
        for path in &created {
            batch.push_lookup(path);
        }
        batch.push_lookup(format!("/hmix/r{round}/absent"));
        batch.push_rename(&rename_src, &moved);
        batch.push_lookup(&moved);
        batch.push_remove(&remove_tgt);

        let funnel_out = funnel.execute(&batch);
        let pinned_out = pinned.execute_concurrent(&batch);
        assert_eq!(funnel_out.len(), pinned_out.len());
        for (i, (f, p)) in funnel_out.iter().zip(&pinned_out).enumerate() {
            match (f, p) {
                (OpOutcome::Resolved(a), OpOutcome::Resolved(b)) => assert_eq!(
                    (a.home, a.level, a.latency, a.messages, a.entry),
                    (b.home, b.level, b.latency, b.messages, b.entry),
                    "round {round} op {i}: pinned lookup diverged from the funnel"
                ),
                _ => assert_eq!(f, p, "round {round} op {i}: outcomes diverged"),
            }
        }

        pinned.drain_concurrent();
        funnel.flush_all_updates();
        pinned.flush_all_updates();
        live.push(moved);
        live.extend(created);
    }

    for path in &live {
        let truth = funnel.true_home(path).expect("live in funnel");
        assert_eq!(
            pinned.true_home(path),
            Some(truth),
            "clusters disagree on the home of {path}"
        );
    }
}
