//! Modular-hash replica placement — the reconfiguration baseline of
//! Figure 11.
//!
//! §2.4 of the paper explains why G-HBA tracks replica location with an
//! IDBFA instead of hashing: under `target = hash(origin) mod M′`, a
//! membership change re-computes every placement, and each replica whose
//! target moved must migrate. This module reproduces that behaviour so the
//! bench can draw the hash-placement curves.

use ghba_bloom::hash::hash_one;
use ghba_core::MdsId;

/// Modular-hash placement over an ordered member list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashPlacement {
    members: Vec<MdsId>,
    seed: u64,
}

impl HashPlacement {
    /// Creates a placement over `members` keyed by `seed` (different
    /// seeds model the placement layouts different workloads induce).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn new(members: Vec<MdsId>, seed: u64) -> Self {
        assert!(!members.is_empty(), "placement needs at least one member");
        HashPlacement { members, seed }
    }

    /// Members in placement order.
    #[must_use]
    pub fn members(&self) -> &[MdsId] {
        &self.members
    }

    /// The member that holds `origin`'s replica: `members[h(origin) mod
    /// M′]`.
    #[must_use]
    pub fn target_of(&self, origin: MdsId) -> MdsId {
        let idx = hash_one(&origin.0, self.seed) as usize % self.members.len();
        self.members[idx]
    }

    /// Adds a member, returning how many of `origins`' replicas must
    /// migrate because their modular target changed.
    pub fn join_and_count_migrations(&mut self, newcomer: MdsId, origins: &[MdsId]) -> usize {
        let before: Vec<MdsId> = origins.iter().map(|&o| self.target_of(o)).collect();
        self.members.push(newcomer);
        origins
            .iter()
            .zip(before)
            .filter(|&(&origin, old)| self.target_of(origin) != old)
            .count()
    }

    /// Removes a member, returning the migration count over `origins`.
    ///
    /// # Panics
    ///
    /// Panics if `leaver` is not a member or is the last member.
    pub fn leave_and_count_migrations(&mut self, leaver: MdsId, origins: &[MdsId]) -> usize {
        assert!(self.members.len() > 1, "cannot empty the placement");
        let before: Vec<MdsId> = origins.iter().map(|&o| self.target_of(o)).collect();
        let pos = self
            .members
            .iter()
            .position(|&m| m == leaver)
            .expect("leaver is a member");
        self.members.remove(pos);
        origins
            .iter()
            .zip(before)
            .filter(|&(&origin, old)| self.target_of(origin) != old || old == leaver)
            .count()
    }
}

/// Expected number of replica migrations when one MDS joins a system of
/// `n` servers organized in groups of `m_prime`, under modular hashing:
/// each of the `n − m_prime` replicas in the joined group re-hashes from
/// `mod M′` to `mod (M′+1)` and moves with probability `M′/(M′+1)`.
#[must_use]
pub fn expected_hash_migrations(n: usize, m_prime: usize) -> f64 {
    if n <= m_prime || m_prime == 0 {
        return 0.0;
    }
    let replicas = (n - m_prime) as f64;
    replicas * (m_prime as f64 / (m_prime + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::Range<u16>) -> Vec<MdsId> {
        range.map(MdsId).collect()
    }

    #[test]
    fn targets_are_members_and_deterministic() {
        let placement = HashPlacement::new(ids(0..5), 7);
        for origin in ids(10..60) {
            let t = placement.target_of(origin);
            assert!(placement.members().contains(&t));
            assert_eq!(t, placement.target_of(origin));
        }
    }

    #[test]
    fn targets_are_roughly_balanced() {
        let placement = HashPlacement::new(ids(0..5), 7);
        let mut counts = [0u32; 5];
        for origin in ids(100..1100) {
            counts[placement.target_of(origin).0 as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((150..250).contains(&c), "member {i}: {c}");
        }
    }

    #[test]
    fn join_migrations_match_modular_expectation() {
        // M′ = 4 → 5: a replica stays only if h mod 4 == h mod 5 at the
        // same member; expected moved fraction ≈ 4/5.
        let mut placement = HashPlacement::new(ids(0..4), 3);
        let origins = ids(100..1100);
        let moved = placement.join_and_count_migrations(MdsId(4), &origins);
        let fraction = moved as f64 / origins.len() as f64;
        assert!((0.7..0.9).contains(&fraction), "moved fraction {fraction}");
    }

    #[test]
    fn join_migrations_exceed_ghba_share() {
        // The Figure 11 ordering: hash placement moves ~M′/(M′+1) of all
        // replicas, G-HBA only 1/(M′+1) of them.
        let mut placement = HashPlacement::new(ids(0..6), 1);
        let origins = ids(100..200);
        let hash_moved = placement.join_and_count_migrations(MdsId(6), &origins);
        let ghba_moved = origins.len() / 7; // (N−M′)/(M′+1)
        assert!(hash_moved > ghba_moved * 3, "{hash_moved} vs {ghba_moved}");
    }

    #[test]
    fn leave_counts_orphans_as_migrations() {
        let mut placement = HashPlacement::new(ids(0..3), 9);
        let origins = ids(50..150);
        let orphaned: Vec<MdsId> = origins
            .iter()
            .copied()
            .filter(|&o| placement.target_of(o) == MdsId(1))
            .collect();
        let moved = placement.leave_and_count_migrations(MdsId(1), &origins);
        assert!(moved >= orphaned.len());
    }

    #[test]
    fn expected_formula_matches_simulation() {
        let n = 60;
        let m_prime = 5;
        let expected = expected_hash_migrations(n, m_prime);
        let mut placement = HashPlacement::new(ids(0..m_prime as u16), 11);
        let origins: Vec<MdsId> = (1000..1000 + (n - m_prime) as u16).map(MdsId).collect();
        let moved = placement.join_and_count_migrations(MdsId(99), &origins) as f64;
        assert!(
            (moved - expected).abs() / expected < 0.25,
            "simulated {moved} vs expected {expected}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(expected_hash_migrations(5, 5), 0.0);
        assert_eq!(expected_hash_migrations(5, 0), 0.0);
    }
}
