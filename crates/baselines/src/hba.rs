//! HBA — Hierarchical Bloom filter Arrays (Zhu, Jiang & Wang, 2004), the
//! paper's primary baseline.
//!
//! Every MDS replicates its Bloom filter to **every** other MDS, so each
//! server holds a complete mirror: `N − 1` replicas plus its own filter,
//! plus an LRU array for hot files. Queries are two-level — L1 (LRU) then
//! the full array — with a system-wide broadcast as the fallback. The cost
//! is memory: at scale the `N − 1` replicas outgrow RAM and probes hit
//! disk, which is exactly the regime Figures 8–10 of the G-HBA paper
//! explore.

use core::time::Duration;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use ghba_bloom::{
    BloomFilter, FilterDelta, Fingerprint, Hit, ProbeBatch, SharedShapeArray, SlotMask,
};
use ghba_core::exec::{resolve_unique, run_chunked};
use ghba_core::{
    execute_vectored, execute_vectored_concurrent, published_shape, CellWriter, ClusterStats,
    ConcurrentScheme, ConcurrentStats, EntryPolicy, GhbaConfig, GroupId, LoadFold, LoadReport,
    MaskCacheLifecycle, MaskCacheStats, Mds, MdsId, MembershipEpoch, NamespaceShards, OpBatch,
    OpOutcome, OverlayEntry, PathKey, QueryLevel, QueryOutcome, ReconfigReport, SlabOp, SlabSpare,
    SnapshotCell, UpdateReport, VectoredScheme, WriteKind,
};
use ghba_simnet::DetRng;

/// The immutable probe state one HBA lookup walks against: the
/// full-mirror published slab plus the membership epoch it was
/// published under. Snapshots are only ever replaced wholesale through
/// the cluster's [`SnapshotCell`], never mutated, so a pinned walk
/// probes one consistent mirror end to end while membership changes
/// publish successors.
#[derive(Debug, Clone)]
pub struct HbaSnapshot {
    /// Every server's published filter, bit-sliced for hash-once
    /// array probes; shared (not copied) by successors whose edits
    /// leave filter content alone.
    slab: Arc<SharedShapeArray<MdsId>>,
    /// The membership epoch this snapshot was published under.
    epoch: MembershipEpoch,
}

/// The cell type HBA publishes its probe snapshots through (same
/// spare-slab recycling writer state as G-HBA's routing cell).
type HbaCell = Arc<SnapshotCell<HbaSnapshot, SlabSpare>>;

/// Builds a fresh cell around `snapshot` (spare slab mirrored from it).
fn hba_cell(snapshot: HbaSnapshot) -> HbaCell {
    let spare = SlabSpare::new((*snapshot.slab).clone());
    Arc::new(SnapshotCell::new(snapshot, spare))
}

/// Publishes `work` as the successor snapshot, folding `ops` through
/// the spare-slab recycling protocol: the spare mirror absorbs the
/// sparse ops and becomes the successor's slab; the displaced slab —
/// once its pins drain — is caught up with the same ops and restocks
/// the spare (deep copy only when a long-lived pin still holds it).
fn publish_edit(
    writer: &mut CellWriter<'_, HbaSnapshot, SlabSpare>,
    mut work: HbaSnapshot,
    ops: &[SlabOp],
) {
    if ops.is_empty() {
        writer.publish(work);
        return;
    }
    let published = writer.state().advance(ops);
    work.slab = Arc::clone(&published);
    let prev = writer.publish(work);
    let displaced = match Arc::try_unwrap(prev) {
        Ok(snapshot) => Arc::try_unwrap(snapshot.slab).ok(),
        Err(_) => None,
    };
    writer.state().recycle(displaced, ops, &published);
}

/// A cloneable, thread-safe handle that retires and restores servers'
/// published mirrors **concurrently with lookups** — HBA's analogue of
/// the G-HBA [`ReconfigHandle`](ghba_core::ReconfigHandle). Retiring a
/// server drops its column from the published slab (probes skip it; the
/// broadcast fallback still resolves its files), restoring pushes the
/// extracted filter back; each publishes one successor snapshot with a
/// bumped epoch, so pinned walks finish against the mirror they
/// admitted under and mask caches revalidate.
///
/// Owner pushes for a retired server (its slab column is gone) are
/// safe: `push_update` checks the published mirror under the writer
/// lock and no-ops, leaving the delta to publish after the restore.
#[derive(Debug, Clone)]
pub struct HbaReconfigHandle {
    shared: HbaCell,
}

impl HbaReconfigHandle {
    /// The membership epoch of the currently published snapshot.
    #[must_use]
    pub fn epoch(&self) -> MembershipEpoch {
        self.shared.pin().epoch
    }

    /// Drops `id`'s column from the published mirror and returns the
    /// extracted filter (hand it back to
    /// [`restore_mds`](HbaReconfigHandle::restore_mds)), or `None` if
    /// the mirror holds no such column.
    #[must_use]
    pub fn retire_mds(&self, id: MdsId) -> Option<BloomFilter> {
        let mut writer = self.shared.edit();
        let base = writer.base();
        let filter = base.slab.extract(id)?;
        let mut work = (*base).clone();
        drop(base);
        work.epoch.bump();
        publish_edit(&mut writer, work, &[SlabOp::Remove(id)]);
        Some(filter)
    }

    /// Restores a retired server's column from `filter`. Returns
    /// `false` (without publishing) when the mirror already has a
    /// column for `id`.
    pub fn restore_mds(&self, id: MdsId, filter: &BloomFilter) -> bool {
        let mut writer = self.shared.edit();
        let base = writer.base();
        if base.slab.contains_id(id) {
            return false;
        }
        let mut work = (*base).clone();
        drop(base);
        work.epoch.bump();
        publish_edit(&mut writer, work, &[SlabOp::PushFilter(id, filter.clone())]);
        true
    }
}

/// HBA's analogue of the G-HBA mask cache: the full-mirror L2 probe
/// masks out only the entry's own slot (`mask_all_except`), so the cache
/// is one mask per entry server. Lifetime follows
/// [`ghba_core::MaskCacheMode`] through the shared
/// [`MaskCacheLifecycle`] state machine: persistent entries are
/// validated lazily against the cluster's [`MembershipEpoch`] (bumped
/// by every join/leave — HBA has no groups, so the per-group refinement
/// does not apply), per-batch entries live between
/// `batch_begin`/`batch_end`, and `Off` rebuilds per walk. The entry
/// vector is sorted by server id and consulted by binary search, same
/// `O(log N)` hit path as the G-HBA cache.
#[derive(Debug, Clone, Default)]
struct HbaMaskCache {
    life: MaskCacheLifecycle,
    /// entry → its all-except-self candidate mask; sorted by entry.
    l2: Vec<(MdsId, SlotMask)>,
}

impl HbaMaskCache {
    fn clear(&mut self) {
        self.l2.clear();
    }

    /// The cached mask of `entry` (valid by construction: the lifecycle
    /// clears the cache whenever the membership epoch moves).
    fn mask(&self, entry: MdsId) -> Option<&SlotMask> {
        self.l2
            .binary_search_by_key(&entry, |(id, _)| *id)
            .ok()
            .map(|at| &self.l2[at].1)
    }
}

/// The read-phase result for one query of a batched HBA walk (see the
/// G-HBA `WalkVerdict`): outcome plus deferred counter bumps.
#[derive(Debug, Clone)]
struct WalkVerdict {
    outcome: QueryOutcome,
    l1_false: u32,
    l2_false: u32,
}

/// Reusable per-worker walk arena (probe batch, row table, verdict
/// buffers, per-query working vectors — fully re-initialized per walk,
/// so chunk walks pay no per-call allocations).
#[derive(Debug, Clone, Default)]
struct WalkScratch {
    batch: ProbeBatch,
    live_rows: Vec<u32>,
    verdicts: Vec<WalkVerdict>,
    /// Per-query resolution slots, `None` until the query's level lands.
    slots: Vec<Option<WalkVerdict>>,
    /// Per-query false-hit tallies `[l1, l2]`.
    falses: Vec<[u32; 2]>,
    latency: Vec<Duration>,
    messages: Vec<u32>,
    fps: Vec<Fingerprint>,
}

/// A simulated HBA metadata cluster (complete replica mirror per server).
///
/// Reuses the per-server state of `ghba-core` ([`Mds`]); only the
/// replication topology, query walk, and update fan-out differ from
/// G-HBA.
///
/// # Examples
///
/// ```
/// use ghba_baselines::HbaCluster;
/// use ghba_core::GhbaConfig;
///
/// let mut hba = HbaCluster::with_servers(
///     GhbaConfig::default().with_filter_capacity(1_000),
///     8,
/// );
/// let home = hba.create_file("/a/b");
/// assert_eq!(hba.lookup("/a/b").home, Some(home));
/// ```
#[derive(Debug)]
pub struct HbaCluster {
    config: GhbaConfig,
    mdss: BTreeMap<MdsId, Mds>,
    /// Every server's published snapshot, bit-sliced (HBA's full-mirror
    /// L2 probe is one hash-once query over the slab instead of `N`
    /// filter walks), published immutably together with the membership
    /// epoch: lookups pin one [`HbaSnapshot`] for a whole batch while
    /// publishes and membership changes swap in successors.
    shared: HbaCell,
    /// The one deterministic stream, shared by `&mut` and `&self` entry
    /// resolution (the concurrent pipeline draws through the lock).
    rng: Mutex<DetRng>,
    stats: ClusterStats,
    next_mds: u16,
    mask_cache: HbaMaskCache,
    shim_entry: EntryPolicy,
    /// Per-worker walk arenas (arena 0 doubles as the sequential
    /// scratch), grown lazily to the configured worker count.
    scratch: Vec<WalkScratch>,
    /// Pending writes recorded by the pin-once pipeline, replayed into
    /// `mdss` at the next `&mut` drain point.
    shards: NamespaceShards,
    /// Wait-free statistics recorders for `&self` lookups and commits,
    /// folded into `stats` at the next drain.
    cstats: ConcurrentStats,
    /// Owner-side fold of the load windows (pseudo-group 0 — HBA has no
    /// groups; see [`HbaCluster::load_report`]).
    load_fold: Mutex<LoadFold>,
}

impl Clone for HbaCluster {
    fn clone(&self) -> Self {
        // A clone gets its own publication cell (snapshots are routing
        // state, not shared between clusters), seeded from whatever this
        // cluster currently publishes.
        let snap = self.shared.pin();
        debug_assert!(
            !self.shards.is_dirty(),
            "clone with undrained concurrent writes pending"
        );
        HbaCluster {
            config: self.config.clone(),
            mdss: self.mdss.clone(),
            shared: hba_cell((*snap).clone()),
            rng: Mutex::new(self.rng.lock().expect("rng poisoned").clone()),
            stats: self.stats.clone(),
            next_mds: self.next_mds,
            mask_cache: self.mask_cache.clone(),
            shim_entry: self.shim_entry,
            scratch: self.scratch.clone(),
            shards: NamespaceShards::new(self.config.write_shards),
            cstats: ConcurrentStats::new(),
            load_fold: Mutex::new(LoadFold::new()),
        }
    }
}

impl HbaCluster {
    /// Creates an HBA cluster of `servers` MDSs.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    #[must_use]
    pub fn with_servers(config: GhbaConfig, servers: usize) -> Self {
        assert!(servers > 0, "cluster needs at least one server");
        let rng = DetRng::new(config.seed).fork(0x4BA);
        let shared = hba_cell(HbaSnapshot {
            slab: Arc::new(SharedShapeArray::new(published_shape(&config))),
            epoch: MembershipEpoch::default(),
        });
        let shards = NamespaceShards::new(config.write_shards);
        let mut cluster = HbaCluster {
            config,
            mdss: BTreeMap::new(),
            shared,
            rng: Mutex::new(rng),
            stats: ClusterStats::default(),
            next_mds: 0,
            mask_cache: HbaMaskCache::default(),
            shim_entry: EntryPolicy::Random,
            scratch: Vec::new(),
            shards,
            cstats: ConcurrentStats::new(),
            load_fold: Mutex::new(LoadFold::new()),
        };
        for _ in 0..servers {
            cluster.add_mds();
        }
        cluster.reset_stats();
        cluster
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &GhbaConfig {
        &self.config
    }

    /// Number of servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.mdss.len()
    }

    /// All server ids, ascending.
    #[must_use]
    pub fn server_ids(&self) -> Vec<MdsId> {
        self.mdss.keys().copied().collect()
    }

    /// Lifetime statistics.
    #[must_use]
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The current membership epoch (bumped by every join/leave and by
    /// every handle-driven retire/restore).
    #[must_use]
    pub fn membership_epoch(&self) -> MembershipEpoch {
        self.shared.pin().epoch
    }

    /// A cloneable handle that retires/restores published mirrors
    /// concurrently with lookups (see [`HbaReconfigHandle`]).
    #[must_use]
    pub fn reconfig_handle(&self) -> HbaReconfigHandle {
        HbaReconfigHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Publishes a successor snapshot applying `ops` to the mirror,
    /// bumping the membership epoch when `bump` is set.
    fn publish_ops(&self, bump: bool, ops: &[SlabOp]) {
        let mut writer = self.shared.edit();
        let mut work = (*writer.base()).clone();
        if bump {
            work.epoch.bump();
        }
        publish_edit(&mut writer, work, ops);
    }

    /// L2 mask-cache accounting, both scopes (same unified accessor
    /// shape as `GhbaCluster::mask_cache_stats`).
    #[must_use]
    pub fn mask_cache_stats(&self) -> MaskCacheStats {
        MaskCacheStats::assemble(
            self.mask_cache.life.stats(),
            (self.stats.mask_cache_hits, self.stats.mask_cache_misses),
            self.cstats.pending_mask(),
        )
    }

    /// The HBA mirror of `GhbaCluster::load_report`: HBA has no groups,
    /// so every server reports under the pseudo-group `GroupId(0)` —
    /// one row whose share is 1.0 by construction, with real member
    /// imbalance, escalation, false-hit, and mask rates. Lets the same
    /// telemetry consumers (dashboards, the adaptive bench's baseline
    /// arm) read both systems through one type.
    #[must_use]
    pub fn load_report(&self) -> LoadReport {
        let shape = vec![(GroupId(0), self.server_ids())];
        let mut fold = self.load_fold.lock().expect("load fold poisoned");
        let fresh = fold.close_window(&self.cstats);
        fold.report(self.shared.pin().epoch, fresh, &shape)
    }

    /// Clears statistics (draining pending concurrent state first, so
    /// discarded accounting never resurfaces as effects).
    pub fn reset_stats(&mut self) {
        self.maybe_drain();
        self.stats = ClusterStats::default();
    }

    /// Total files homed across the cluster.
    #[must_use]
    pub fn total_files(&self) -> usize {
        self.mdss.values().map(Mds::file_count).sum()
    }

    /// Ground-truth home of `path`.
    #[must_use]
    pub fn true_home(&self, path: &str) -> Option<MdsId> {
        self.mdss
            .iter()
            .find(|(_, mds)| mds.stores(path))
            .map(|(&id, _)| id)
    }

    fn pick_random_mds(&self) -> MdsId {
        let ids = self.server_ids();
        *self
            .rng
            .lock()
            .expect("rng poisoned")
            .choose(&ids)
            .expect("non-empty cluster")
    }

    /// Resolves the serving MDS for op `op_index` of a batch under
    /// `policy` (same contract as G-HBA's resolver; the deterministic
    /// policies defer to [`EntryPolicy::resolve_deterministic`]).
    /// Callable from `&self` — the concurrent pipeline draws entries
    /// through the rng lock.
    fn entry_for(&self, policy: EntryPolicy, op_index: usize) -> MdsId {
        if policy == EntryPolicy::Random {
            return self.pick_random_mds();
        }
        policy
            .resolve_deterministic(&self.server_ids(), op_index)
            .expect("non-random policy resolves deterministically")
    }

    fn refresh_replica_charges(&mut self) {
        let held = self.mdss.len().saturating_sub(1);
        for mds in self.mdss.values_mut() {
            mds.set_replica_charge(held);
        }
    }

    /// Adds a server: in HBA the newcomer receives **all `N` existing
    /// replicas** (to hold the full mirror) and broadcasts its own filter
    /// to everyone — the cost Figure 11/15 contrasts with G-HBA.
    pub fn add_mds(&mut self) -> MdsId {
        self.add_mds_reported().0
    }

    /// Like [`add_mds`](HbaCluster::add_mds) with a cost report.
    pub fn add_mds_reported(&mut self) -> (MdsId, ReconfigReport) {
        self.maybe_drain();
        let id = MdsId(self.next_mds);
        self.next_mds += 1;
        let existing = self.mdss.len() as u64;
        self.mdss.insert(id, Mds::new(id, &self.config));
        // One successor snapshot: the newcomer's column and the epoch
        // bump land atomically for concurrent readers.
        self.publish_ops(true, &[SlabOp::Push(id)]);
        let report = ReconfigReport {
            // The newcomer pulls every existing filter…
            migrated_replicas: existing,
            // …one transfer message each, plus broadcasting its own filter
            // to every existing server.
            messages: existing * 2,
            ..ReconfigReport::default()
        };
        self.refresh_replica_charges();
        self.stats.migrated_replicas += report.migrated_replicas;
        self.stats.reconfig_messages += report.messages;
        (id, report)
    }

    /// Removes a server, re-homing its files to the least-loaded peer and
    /// notifying everyone to drop its replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or is the last server.
    pub fn remove_mds(&mut self, id: MdsId) -> ReconfigReport {
        assert!(self.mdss.contains_key(&id), "unknown server");
        assert!(self.mdss.len() > 1, "cannot remove the last server");
        self.maybe_drain();
        let files = self.mdss.get_mut(&id).expect("exists").evacuate();
        let mut report = ReconfigReport {
            rehomed_files: files.len() as u64,
            messages: files.len() as u64,
            ..ReconfigReport::default()
        };
        self.mdss.remove(&id);
        // One successor snapshot: column drop + epoch bump together.
        self.publish_ops(true, &[SlabOp::Remove(id)]);
        if !files.is_empty() {
            let target = *self
                .mdss
                .iter()
                .min_by_key(|(&mid, mds)| (mds.file_count(), mid))
                .map(|(id, _)| id)
                .expect("non-empty");
            let target_mds = self.mdss.get_mut(&target).expect("target");
            for path in &files {
                target_mds.create_local(path);
            }
            let update = self.push_update(target);
            report.messages += update.messages;
        }
        // Drop notices to every remaining server.
        report.messages += self.mdss.len() as u64;
        for mds in self.mdss.values_mut() {
            if let Some(lru) = mds.lru_mut() {
                lru.purge_home(id);
            }
        }
        self.refresh_replica_charges();
        self.stats.migrated_replicas += report.migrated_replicas;
        self.stats.reconfig_messages += report.messages;
        report
    }

    /// Creates metadata for `path` at a random home.
    pub fn create_file(&mut self, path: &str) -> MdsId {
        let home = self.pick_random_mds();
        self.create_file_at(path, home);
        home
    }

    /// Creates metadata for `path` at `home`.
    ///
    /// # Panics
    ///
    /// Panics if `home` is unknown.
    pub fn create_file_at(&mut self, path: &str, home: MdsId) {
        self.maybe_drain();
        self.mdss
            .get_mut(&home)
            .expect("home exists")
            .create_local(path);
        self.maybe_publish(home);
    }

    /// Pre-hashed variant of [`create_file_at`](HbaCluster::create_file_at)
    /// for the batched op pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `home` is unknown.
    pub fn create_file_keyed(&mut self, key: &PathKey, home: MdsId) {
        self.maybe_drain();
        self.mdss
            .get_mut(&home)
            .expect("home exists")
            .create_local_fp(key.path(), key.fingerprint());
        self.maybe_publish(home);
    }

    /// Removes `path` from its home.
    pub fn remove_file(&mut self, path: &str) -> Option<MdsId> {
        self.maybe_drain();
        let home = self.true_home(path)?;
        self.mdss.get_mut(&home).expect("exists").remove_local(path);
        self.maybe_publish(home);
        Some(home)
    }

    /// Pre-hashed variant of [`remove_file`](HbaCluster::remove_file).
    pub fn remove_file_keyed(&mut self, key: &PathKey) -> Option<MdsId> {
        self.maybe_drain();
        let home = self.true_home(key.path())?;
        self.mdss
            .get_mut(&home)
            .expect("exists")
            .remove_local_fp(key.path(), key.fingerprint());
        self.maybe_publish(home);
        Some(home)
    }

    fn maybe_publish(&mut self, origin: MdsId) -> Option<UpdateReport> {
        // The exact O(m) drift distance runs at the gated cadence, not on
        // every mutation once past the publish gate (same protocol as
        // G-HBA's `maybe_publish`, so the baseline comparison stays fair).
        let threshold = self.config.update_threshold_bits;
        let gate = self.config.publish_gate();
        let exceeded = self.mdss.get_mut(&origin)?.drift_exceeds(gate, threshold)?;
        self.stats.counters.incr("drift_exact_checks");
        if exceeded {
            Some(self.push_update(origin))
        } else {
            None
        }
    }

    /// Pushes `origin`'s filter refresh to **all** other servers — HBA's
    /// system-wide broadcast, the Figure 12 contrast to G-HBA's
    /// one-per-group.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is unknown.
    pub fn push_update(&mut self, origin: MdsId) -> UpdateReport {
        self.maybe_drain();
        // Take the writer lock *before* consuming the delta, so a
        // concurrent [`HbaReconfigHandle::retire_mds`] cannot drop
        // `origin`'s column between the check and the publish.
        let mut writer = self.shared.edit();
        if !writer.base().slab.contains_id(origin) {
            // `origin` is retired: its mirror column is extracted, so
            // there is nothing to refresh. Leave the delta unconsumed —
            // the server's publish baseline stays the filter
            // `retire_mds` extracted, so the first push after a restore
            // folds the accumulated drift into the restored column.
            return UpdateReport::default();
        }
        let mds = self.mdss.get_mut(&origin).expect("origin");
        let delta = match mds.publish() {
            Some(delta) => delta,
            None => return UpdateReport::default(),
        };
        // Sparse dirty-row application: cost scales with the delta, not
        // with the O(m) filter width. No epoch bump: a publish refreshes
        // filter *content* under the same membership, so cached masks
        // stay valid and pinned walks keep probing the bits they
        // admitted against.
        let work = (*writer.base()).clone();
        publish_edit(&mut writer, work, &[SlabOp::Delta(origin, delta.clone())]);
        drop(writer);
        let recipients = self.mdss.len().saturating_sub(1);
        let report = UpdateReport {
            messages: recipients as u64,
            bytes: delta.wire_bytes() as u64 * recipients as u64,
            latency: self.config.latency.multicast_rtt(recipients),
            refreshed: true,
        };
        self.stats.update_messages += report.messages;
        self.stats.update_bytes += report.bytes;
        self.stats.update_latency.record(report.latency);
        report
    }

    /// Forces a refresh for every server.
    pub fn flush_all_updates(&mut self) {
        for id in self.server_ids() {
            let _ = self.push_update(id);
        }
    }

    /// Looks `path` up from a random entry server.
    pub fn lookup(&mut self, path: &str) -> QueryOutcome {
        let entry = self.pick_random_mds();
        self.lookup_from(entry, path)
    }

    /// The HBA query walk: L1 LRU → full replica array → broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is unknown.
    pub fn lookup_from(&mut self, entry: MdsId, path: &str) -> QueryOutcome {
        self.maybe_drain();
        let fp = Fingerprint::of(path);
        let snap = self.shared.pin();
        self.lookup_one(&snap, entry, path, &fp)
    }

    /// Looks up a batch of paths, each from a random entry server.
    pub fn lookup_batch<S: AsRef<str>>(&mut self, paths: &[S]) -> Vec<QueryOutcome> {
        let queries: Vec<(MdsId, &str)> = paths
            .iter()
            .map(|path| (self.pick_random_mds(), path.as_ref()))
            .collect();
        self.lookup_batch_from(&queries)
    }

    /// Resolves a batch of concurrent lookups level by level: every query
    /// past L1 joins one [`ProbeBatch`] against the full-mirror published
    /// slab, so HBA amortizes row loads across the batch exactly like
    /// G-HBA (the fair-comparison requirement).
    ///
    /// # Panics
    ///
    /// Panics if any entry is unknown.
    pub fn lookup_batch_from(&mut self, queries: &[(MdsId, &str)]) -> Vec<QueryOutcome> {
        // Hash once; every level reuses the fingerprint.
        let prehashed: Vec<(MdsId, &str, Fingerprint)> = queries
            .iter()
            .map(|&(entry, path)| (entry, path, Fingerprint::of(path)))
            .collect();
        self.lookup_batch_prehashed(&prehashed)
    }

    /// The batched walk behind [`lookup_batch_from`], taking queries whose
    /// fingerprints were already computed at batch admission.
    ///
    /// Same three-phase execution as the G-HBA walk: masks prepare on
    /// the dispatching thread, the read phase splits into per-worker
    /// chunks (when `executor.workers > 1` and the batch reaches
    /// `executor.min_parallel_batch`) that walk the full-mirror slab
    /// read-only, and verdicts splice back in stream order —
    /// bit-identical to `workers = 1` at every worker count
    /// (property-tested; the fair-comparison requirement).
    ///
    /// # Panics
    ///
    /// Panics if any entry is unknown.
    ///
    /// [`lookup_batch_from`]: HbaCluster::lookup_batch_from
    fn lookup_batch_prehashed(
        &mut self,
        queries: &[(MdsId, &str, Fingerprint)],
    ) -> Vec<QueryOutcome> {
        let total = queries.len();
        if total == 0 {
            return Vec::new();
        }
        self.maybe_drain();
        // Pin one probe snapshot for the whole batch: every query —
        // across every worker chunk — probes this one consistent mirror,
        // however many publishes land while the walk runs.
        let snap = self.shared.pin();
        if total == 1 {
            // The scratch-reusing scalar fast path (no batch plumbing).
            let (entry, path, fp) = queries[0];
            return vec![self.lookup_one(&snap, entry, path, &fp)];
        }
        self.prepare_masks(&snap, queries);
        // Cross-chunk fingerprint dedup, same contract as the G-HBA
        // walk: the read phase is a pure function of `(entry, path)`
        // under the pinned snapshot, so each distinct pair walks once
        // and duplicates share the verdict — effects still apply once
        // per occurrence, in stream order.
        let (uniques, assign) = resolve_unique(queries, |&(entry, path, _)| (entry, path));
        let deduped: Vec<(MdsId, &str, Fingerprint)> = uniques
            .iter()
            .map(|&first| queries[first as usize])
            .collect();
        let executor = self.config.executor;
        let mut arenas = core::mem::take(&mut self.scratch);
        let walked = {
            let shared: &HbaCluster = self;
            let snap = &snap;
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_chunked(&deduped, executor, &mut arenas, |chunk, arena| {
                    shared.walk_chunk(snap, chunk, arena)
                })
            }))
        };
        let used = match walked {
            Ok(used) => used,
            Err(payload) => {
                // A poisoned chunk must not cost the cluster its warmed
                // per-worker arenas: restore them before re-raising.
                self.scratch = arenas;
                std::panic::resume_unwind(payload);
            }
        };
        let mut resolved: Vec<WalkVerdict> = Vec::with_capacity(deduped.len());
        for arena in arenas.iter_mut().take(used) {
            resolved.append(&mut arena.verdicts);
        }
        debug_assert_eq!(
            resolved.len(),
            deduped.len(),
            "chunks cover the deduplicated batch exactly once"
        );
        let mut outcomes = Vec::with_capacity(total);
        for (qi, &slot) in assign.iter().enumerate() {
            let (entry, _, fp) = queries[qi];
            let verdict = resolved[slot as usize].clone();
            // Load mirror: one record per occurrence, pseudo-group 0.
            self.cstats.record_group_walk(
                GroupId(0),
                entry,
                verdict.outcome.level,
                u64::from(verdict.l1_false) + u64::from(verdict.l2_false),
            );
            outcomes.push(self.apply_verdict(&fp, verdict));
        }
        self.scratch = arenas;
        outcomes
    }

    /// Validates (or rebuilds) the all-except-self masks of the batch's
    /// entry servers on the dispatching thread; the (possibly parallel)
    /// read phase then consults the cache strictly read-only.
    fn prepare_masks(&mut self, snap: &HbaSnapshot, queries: &[(MdsId, &str, Fingerprint)]) {
        if self
            .mask_cache
            .life
            .begin_walk(self.config.mask_cache, snap.epoch)
        {
            self.mask_cache.clear();
        }
        for &(entry, _, _) in queries {
            // Unknown entries panic inside the walk itself.
            if !self.mdss.contains_key(&entry) {
                continue;
            }
            match self
                .mask_cache
                .l2
                .binary_search_by_key(&entry, |(id, _)| *id)
            {
                Ok(_) => {
                    self.mask_cache.life.hit();
                    self.stats.mask_cache_hits += 1;
                    self.cstats.record_group_mask(GroupId(0), true);
                }
                Err(at) => {
                    self.mask_cache.life.miss();
                    self.stats.mask_cache_misses += 1;
                    self.cstats.record_group_mask(GroupId(0), false);
                    let mask = snap.slab.mask_all_except(entry);
                    self.mask_cache.l2.insert(at, (entry, mask));
                }
            }
        }
    }

    /// Resolves one chunk of a batched walk **read-only** (L1 → full
    /// mirror → broadcast, one slab pass per level across the chunk),
    /// deferring every side effect into `scratch.verdicts`.
    ///
    /// # Panics
    ///
    /// Panics if any entry is unknown.
    fn walk_chunk(
        &self,
        snap: &HbaSnapshot,
        queries: &[(MdsId, &str, Fingerprint)],
        scratch: &mut WalkScratch,
    ) {
        let WalkScratch {
            batch,
            live_rows,
            verdicts,
            slots,
            falses,
            latency,
            messages,
            fps,
        } = scratch;
        let model = self.config.latency.clone();
        let total = queries.len();
        verdicts.clear();
        slots.clear();
        slots.resize(total, None);
        falses.clear();
        falses.resize(total, [0; 2]);
        latency.clear();
        latency.resize(total, model.dispatch);
        messages.clear();
        messages.resize(total, 0);
        fps.clear();
        fps.extend(queries.iter().map(|&(_, _, fp)| fp));
        // One live-filter row table for the whole chunk (entry probes at
        // L2, every server's probe in the broadcast fallback), derived
        // through the ProbeBatch fastmod machinery.
        let live_shape = published_shape(&self.config);
        let k_live = live_shape.hashes as usize;
        batch.clear();
        for fp in fps.iter() {
            batch.push(*fp);
        }
        batch.derive_rows_into(live_shape, live_rows);
        let mut active: Vec<usize> = Vec::with_capacity(total);

        // L1: each entry server's LRU array.
        for (qi, &(entry, path, _)) in queries.iter().enumerate() {
            assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
            let fp = fps[qi];
            let l1_hit = self
                .mdss
                .get(&entry)
                .and_then(Mds::lru)
                .map(|lru| lru.query_fp(&fp));
            if let Some(Hit::Unique(candidate)) = l1_hit {
                latency[qi] += model.memory_probe;
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                {
                    slots[qi] = Some(self.assemble(
                        snap.epoch,
                        entry,
                        home,
                        QueryLevel::L1Lru,
                        latency[qi],
                        messages[qi],
                        falses[qi],
                    ));
                    continue;
                }
                falses[qi][0] += 1;
            } else if l1_hit.is_some() {
                latency[qi] += model.memory_probe;
            }
            active.push(qi);
        }

        // L2: the complete replica array (N − 1 replicas + own filter) —
        // one batched bit-sliced pass over the published slab for the
        // whole chunk, plus each entry's fresher live filter in place of
        // its own published snapshot.
        batch.clear();
        for &qi in &active {
            let (entry, _, _) = queries[qi];
            let mask = self.mask_cache.mask(entry).expect("mask prepared");
            let held = self.mdss.len() - 1;
            let entry_mds = &self.mdss[&entry];
            let resident = entry_mds.resident_replicas(held);
            latency[qi] += model.array_probe(held + 1, held - resident);
            batch.push_masked(fps[qi], mask.clone());
        }
        let hits = snap.slab.query_batch(batch);
        let mut next_active = Vec::with_capacity(active.len());
        for (&qi, hit) in active.iter().zip(&hits) {
            let (entry, path, _) = queries[qi];
            let mut positives = hit.candidates().to_vec();
            if self.mdss[&entry].probe_live_rows(&live_rows[qi * k_live..(qi + 1) * k_live]) {
                positives.push(entry);
            }
            if positives.len() == 1 {
                let candidate = positives[0];
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency[qi], &mut messages[qi])
                {
                    slots[qi] = Some(self.assemble(
                        snap.epoch,
                        entry,
                        home,
                        QueryLevel::L2Segment,
                        latency[qi],
                        messages[qi],
                        falses[qi],
                    ));
                    continue;
                }
                falses[qi][1] += 1;
            }
            next_active.push(qi);
        }
        let active = next_active;

        // Fallback: system-wide broadcast (authoritative); recipients'
        // live probes reuse the chunk's precomputed row table.
        for &qi in &active {
            let (entry, path, _) = queries[qi];
            let rows = &live_rows[qi * k_live..(qi + 1) * k_live];
            let others = self.mdss.len() - 1;
            messages[qi] += 2 * others as u32;
            latency[qi] += model.multicast_rtt(others) + model.memory_probe;
            let mut found = None;
            let mut verify_cost = Duration::ZERO;
            for (&id, mds) in &self.mdss {
                if mds.probe_live_rows(rows) {
                    verify_cost = verify_cost.max(mds.metadata_access_cost(&model));
                    if mds.stores(path) {
                        found = Some(id);
                    }
                }
            }
            latency[qi] += verify_cost;
            slots[qi] = Some(match found {
                Some(home) => self.assemble(
                    snap.epoch,
                    entry,
                    home,
                    QueryLevel::L4Global,
                    latency[qi],
                    messages[qi],
                    falses[qi],
                ),
                None => {
                    let latency = latency[qi].mul_f64(self.config.contention_factor(messages[qi]));
                    WalkVerdict {
                        outcome: QueryOutcome {
                            home: None,
                            level: QueryLevel::Nonexistent,
                            latency,
                            messages: messages[qi],
                            entry,
                            epoch: snap.epoch,
                        },
                        l1_false: falses[qi][0],
                        l2_false: falses[qi][1],
                    }
                }
            });
        }

        batch.clear();
        live_rows.clear();
        verdicts.extend(
            slots
                .drain(..)
                .map(|slot| slot.expect("every query resolved by the broadcast")),
        );
    }

    /// Builds a resolved query's verdict (contention applied, pinned
    /// epoch stamped). Pure.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        epoch: MembershipEpoch,
        entry: MdsId,
        home: MdsId,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
        falses: [u32; 2],
    ) -> WalkVerdict {
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        WalkVerdict {
            outcome: QueryOutcome {
                home: Some(home),
                level,
                latency,
                messages,
                entry,
                epoch,
            },
            l1_false: falses[0],
            l2_false: falses[1],
        }
    }

    /// Applies one verdict's deferred effects in stream order (counter
    /// bumps, the LRU fill, statistics) and returns the outcome.
    fn apply_verdict(&mut self, fp: &Fingerprint, verdict: WalkVerdict) -> QueryOutcome {
        let WalkVerdict {
            outcome,
            l1_false,
            l2_false,
        } = verdict;
        for (label, count) in [("l1_false_hits", l1_false), ("l2_false_hits", l2_false)] {
            if count > 0 {
                self.stats.counters.add(label, count.into());
            }
        }
        if let Some(home) = outcome.home {
            if let Some(lru) = self.mdss.get_mut(&outcome.entry).and_then(Mds::lru_mut) {
                lru.record_fp(fp, home);
            }
        }
        self.stats.levels.record(outcome.level);
        self.stats.lookup_latency.record(outcome.latency);
        outcome
    }

    fn verify_at(
        &self,
        candidate: MdsId,
        entry: MdsId,
        path: &str,
        latency: &mut Duration,
        messages: &mut u32,
    ) -> Option<MdsId> {
        let model = self.config.latency.clone();
        if candidate != entry {
            *messages += 2;
            *latency += model.unicast_rtt();
        }
        let mds = self.mdss.get(&candidate)?;
        *latency += mds.metadata_access_cost(&model);
        mds.stores(path).then_some(candidate)
    }

    /// The scratch-reusing scalar walk behind single-query lookups
    /// (`B = 1` batches and [`lookup_from`](HbaCluster::lookup_from)):
    /// the same L1 → full mirror → broadcast escalation as
    /// [`walk_chunk`](HbaCluster::walk_chunk), minus the batch plumbing
    /// (no [`ProbeBatch`] assembly, no row-table derivation, no verdict
    /// buffers). Per-query accounting is bit-identical to the batched
    /// walk (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is unknown.
    fn lookup_one(
        &mut self,
        snap: &HbaSnapshot,
        entry: MdsId,
        path: &str,
        fp: &Fingerprint,
    ) -> QueryOutcome {
        assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
        self.prepare_masks(snap, &[(entry, path, *fp)]);
        let model = self.config.latency.clone();
        let mut latency = model.dispatch;
        let mut messages = 0u32;
        let mut group_falses = 0u64;

        // L1: the entry server's LRU array.
        let l1_hit = self
            .mdss
            .get(&entry)
            .and_then(Mds::lru)
            .map(|lru| lru.query_fp(fp));
        if let Some(hit) = l1_hit {
            latency += model.memory_probe;
            if let Hit::Unique(candidate) = hit {
                if let Some(home) =
                    self.verify_at(candidate, entry, path, &mut latency, &mut messages)
                {
                    self.cstats.record_group_walk(
                        GroupId(0),
                        entry,
                        QueryLevel::L1Lru,
                        group_falses,
                    );
                    return self.finish(
                        entry,
                        fp,
                        home,
                        QueryLevel::L1Lru,
                        latency,
                        messages,
                        snap.epoch,
                    );
                }
                self.stats.counters.incr("l1_false_hits");
                group_falses += 1;
            }
        }

        // L2: the complete replica array, plus the entry's fresher live
        // filter in place of its own published snapshot.
        let held = self.mdss.len() - 1;
        let hit = {
            let mask = self.mask_cache.mask(entry).expect("mask prepared");
            snap.slab.query_fp_masked(fp, mask)
        };
        let resident = self.mdss[&entry].resident_replicas(held);
        latency += model.array_probe(held + 1, held - resident);
        let mut positives = hit.candidates().to_vec();
        if self.mdss[&entry].probe_live_fp(fp) {
            positives.push(entry);
        }
        if positives.len() == 1 {
            if let Some(home) =
                self.verify_at(positives[0], entry, path, &mut latency, &mut messages)
            {
                self.cstats.record_group_walk(
                    GroupId(0),
                    entry,
                    QueryLevel::L2Segment,
                    group_falses,
                );
                return self.finish(
                    entry,
                    fp,
                    home,
                    QueryLevel::L2Segment,
                    latency,
                    messages,
                    snap.epoch,
                );
            }
            self.stats.counters.incr("l2_false_hits");
            group_falses += 1;
        }

        // Fallback: system-wide broadcast (authoritative).
        let others = self.mdss.len() - 1;
        messages += 2 * others as u32;
        latency += model.multicast_rtt(others) + model.memory_probe;
        let mut found = None;
        let mut verify_cost = Duration::ZERO;
        for (&id, mds) in &self.mdss {
            if mds.probe_live_fp(fp) {
                verify_cost = verify_cost.max(mds.metadata_access_cost(&model));
                if mds.stores(path) {
                    found = Some(id);
                }
            }
        }
        latency += verify_cost;
        self.cstats.record_group_walk(
            GroupId(0),
            entry,
            match found {
                Some(_) => QueryLevel::L4Global,
                None => QueryLevel::Nonexistent,
            },
            group_falses,
        );
        match found {
            Some(home) => self.finish(
                entry,
                fp,
                home,
                QueryLevel::L4Global,
                latency,
                messages,
                snap.epoch,
            ),
            None => {
                let latency = latency.mul_f64(self.config.contention_factor(messages));
                self.stats.levels.record(QueryLevel::Nonexistent);
                self.stats.lookup_latency.record(latency);
                QueryOutcome {
                    home: None,
                    level: QueryLevel::Nonexistent,
                    latency,
                    messages,
                    entry,
                    epoch: snap.epoch,
                }
            }
        }
    }

    /// Records a successful scalar lookup (LRU fill, level counters,
    /// contention inflation) — the same effects
    /// [`apply_verdict`](HbaCluster::apply_verdict) applies when
    /// splicing a batched walk.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        entry: MdsId,
        fp: &Fingerprint,
        home: MdsId,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
        epoch: MembershipEpoch,
    ) -> QueryOutcome {
        if let Some(lru) = self.mdss.get_mut(&entry).and_then(Mds::lru_mut) {
            lru.record_fp(fp, home);
        }
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        self.stats.levels.record(level);
        self.stats.lookup_latency.record(latency);
        QueryOutcome {
            home: Some(home),
            level,
            latency,
            messages,
            entry,
            epoch,
        }
    }

    /// A lookup through `&self`, safe to call from many threads at once
    /// — and concurrently with an [`HbaReconfigHandle`] retiring and
    /// restoring mirrors: the walk pins one snapshot and probes it end
    /// to end, builds its all-except-self mask on the fly from the
    /// pinned slab, observes this era's pending concurrent writes
    /// through the namespace-shard overlay, and records level/latency
    /// statistics into wait-free atomic counters (folded at the next
    /// `&mut` drain). Fills no LRU; latency and message accounting are
    /// otherwise identical to [`lookup_from`](HbaCluster::lookup_from).
    ///
    /// # Panics
    ///
    /// Panics if `entry` is unknown.
    #[must_use]
    pub fn lookup_concurrent(&self, entry: MdsId, path: &str) -> QueryOutcome {
        let fp = Fingerprint::of(path);
        let snap = self.shared.pin();
        let mut memo = HashMap::new();
        self.walk_pinned(&snap, entry, path, &fp, &mut memo)
    }

    /// Whether `candidate`'s live filter probes positive for `fp`,
    /// overlaid with this era's pending writes (see the G-HBA
    /// counterpart: pending creates probe positive at their recorded
    /// home; pending removes stay visible until the drain).
    fn probe_live_pinned(&self, candidate: MdsId, fp: &Fingerprint, overlay: OverlayEntry) -> bool {
        if overlay == OverlayEntry::Created(candidate) {
            return true;
        }
        self.mdss[&candidate].probe_live_fp(fp)
    }

    /// [`verify_at`](HbaCluster::verify_at) overlaid with this era's
    /// pending writes.
    fn verify_at_pinned(
        &self,
        candidate: MdsId,
        entry: MdsId,
        path: &str,
        overlay: OverlayEntry,
        latency: &mut Duration,
        messages: &mut u32,
    ) -> Option<MdsId> {
        let model = self.config.latency.clone();
        if candidate != entry {
            *messages += 2;
            *latency += model.unicast_rtt();
        }
        let mds = self.mdss.get(&candidate)?;
        *latency += mds.metadata_access_cost(&model);
        let stores = match overlay {
            OverlayEntry::Created(home) => candidate == home,
            OverlayEntry::Removed => false,
            OverlayEntry::Untracked => mds.stores(path),
        };
        stores.then_some(candidate)
    }

    /// Finishes a pinned walk: contention inflation, pinned epoch, and
    /// the atomic statistics the drain later folds.
    #[allow(clippy::too_many_arguments)]
    fn finish_pinned(
        &self,
        epoch: MembershipEpoch,
        entry: MdsId,
        home: Option<MdsId>,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
        falses: [u64; 2],
    ) -> QueryOutcome {
        let outcome = self.readonly_outcome(epoch, entry, home, level, latency, messages);
        self.cstats.record_lookup(outcome.level, outcome.latency);
        self.cstats.record_false_hits(falses[0], falses[1], 0, 0);
        // Load mirror: HBA has no groups — everything reports under the
        // pseudo-group 0 (see `load_report`).
        self.cstats
            .record_group_walk(GroupId(0), entry, outcome.level, falses.iter().sum());
        outcome
    }

    /// The L1 → full mirror → broadcast escalation of one query against
    /// a pinned snapshot, from `&self` (the read engine of
    /// [`lookup_concurrent`](HbaCluster::lookup_concurrent) and of the
    /// pin-once batch pipeline). `memo` caches the all-except-self L2
    /// masks for the caller's chosen scope; memo traffic feeds the
    /// shared mask-cache hit/miss accounting.
    fn walk_pinned(
        &self,
        snap: &HbaSnapshot,
        entry: MdsId,
        path: &str,
        fp: &Fingerprint,
        memo: &mut HashMap<MdsId, SlotMask>,
    ) -> QueryOutcome {
        assert!(self.mdss.contains_key(&entry), "unknown entry MDS");
        let overlay = self.shards.overlay_keyed(path, fp);
        let model = self.config.latency.clone();
        let mut latency = model.dispatch;
        let mut messages = 0u32;
        let mut falses = [0u64; 2];

        // L1: the entry server's LRU array (probe only; no fill).
        let l1_hit = self
            .mdss
            .get(&entry)
            .and_then(Mds::lru)
            .map(|lru| lru.query_fp(fp));
        if let Some(hit) = l1_hit {
            latency += model.memory_probe;
            if let Hit::Unique(candidate) = hit {
                if let Some(home) = self.verify_at_pinned(
                    candidate,
                    entry,
                    path,
                    overlay,
                    &mut latency,
                    &mut messages,
                ) {
                    return self.finish_pinned(
                        snap.epoch,
                        entry,
                        Some(home),
                        QueryLevel::L1Lru,
                        latency,
                        messages,
                        falses,
                    );
                }
                falses[0] += 1;
            }
        }

        // L2: the complete replica array under the pinned mirror.
        let held = self.mdss.len() - 1;
        if let std::collections::hash_map::Entry::Vacant(slot) = memo.entry(entry) {
            self.cstats.record_mask(false);
            self.cstats.record_group_mask(GroupId(0), false);
            slot.insert(snap.slab.mask_all_except(entry));
        } else {
            self.cstats.record_mask(true);
            self.cstats.record_group_mask(GroupId(0), true);
        }
        let mask = memo.get(&entry).expect("just ensured");
        let hit = snap.slab.query_fp_masked(fp, mask);
        let resident = self.mdss[&entry].resident_replicas(held);
        latency += model.array_probe(held + 1, held - resident);
        let mut positives = hit.candidates().to_vec();
        if self.probe_live_pinned(entry, fp, overlay) {
            positives.push(entry);
        }
        if positives.len() == 1 {
            if let Some(home) = self.verify_at_pinned(
                positives[0],
                entry,
                path,
                overlay,
                &mut latency,
                &mut messages,
            ) {
                return self.finish_pinned(
                    snap.epoch,
                    entry,
                    Some(home),
                    QueryLevel::L2Segment,
                    latency,
                    messages,
                    falses,
                );
            }
            falses[1] += 1;
        }

        // Fallback: system-wide broadcast (authoritative).
        let others = self.mdss.len() - 1;
        messages += 2 * others as u32;
        latency += model.multicast_rtt(others) + model.memory_probe;
        let mut found = None;
        let mut verify_cost = Duration::ZERO;
        for (&id, mds) in &self.mdss {
            if self.probe_live_pinned(id, fp, overlay) {
                verify_cost = verify_cost.max(mds.metadata_access_cost(&model));
                let stores = match overlay {
                    OverlayEntry::Created(home) => id == home,
                    OverlayEntry::Removed => false,
                    OverlayEntry::Untracked => mds.stores(path),
                };
                if stores {
                    found = Some(id);
                }
            }
        }
        latency += verify_cost;
        let level = match found {
            Some(_) => QueryLevel::L4Global,
            None => QueryLevel::Nonexistent,
        };
        self.finish_pinned(snap.epoch, entry, found, level, latency, messages, falses)
    }

    /// Resolves a fused run of lookups against a pinned snapshot from
    /// `&self`: cross-chunk dedup, chunked pinned walks across the exec
    /// pool, outcomes spliced back in stream order (the concurrent
    /// counterpart of
    /// [`lookup_batch_prehashed`](HbaCluster::lookup_batch_prehashed)).
    fn fused_pinned(&self, snap: &HbaSnapshot, queries: &[(MdsId, &PathKey)]) -> Vec<QueryOutcome> {
        if queries.is_empty() {
            return Vec::new();
        }
        let items: Vec<(MdsId, &str, Fingerprint)> = queries
            .iter()
            .map(|&(entry, key)| (entry, key.path(), *key.fingerprint()))
            .collect();
        if items.len() == 1 {
            let (entry, path, fp) = items[0];
            let mut memo = HashMap::new();
            return vec![self.walk_pinned(snap, entry, path, &fp, &mut memo)];
        }
        let (uniques, assign) = resolve_unique(&items, |&(entry, path, _)| (entry, path));
        let deduped: Vec<(MdsId, &str, Fingerprint)> =
            uniques.iter().map(|&first| items[first as usize]).collect();
        #[derive(Default)]
        struct PinArena {
            outcomes: Vec<QueryOutcome>,
            memo: HashMap<MdsId, SlotMask>,
        }
        let mut arenas: Vec<PinArena> = Vec::new();
        let used = run_chunked(
            &deduped,
            self.config.executor,
            &mut arenas,
            |chunk, arena| {
                for &(entry, path, fp) in chunk {
                    let outcome = self.walk_pinned(snap, entry, path, &fp, &mut arena.memo);
                    arena.outcomes.push(outcome);
                }
            },
        );
        let mut resolved: Vec<QueryOutcome> = Vec::with_capacity(deduped.len());
        for arena in arenas.iter_mut().take(used) {
            resolved.append(&mut arena.outcomes);
        }
        debug_assert_eq!(resolved.len(), deduped.len());
        assign
            .iter()
            .map(|&slot| resolved[slot as usize].clone())
            .collect()
    }

    /// Records a pending create from `&self` (the pin-once write
    /// primitive); the store and live filter are touched at drain time.
    fn apply_create_shared(&self, key: &PathKey, home: MdsId) {
        debug_assert!(self.mdss.contains_key(&home), "home must exist");
        self.shards.record_create(key, home);
    }

    /// Records a pending removal from `&self`, resolving the victim's
    /// home through the overlay first, the authoritative stores second.
    fn apply_remove_shared(&self, key: &PathKey) -> Option<MdsId> {
        match self.shards.overlay(key) {
            OverlayEntry::Created(home) => {
                self.shards.record_remove(key, home);
                Some(home)
            }
            OverlayEntry::Removed => None,
            OverlayEntry::Untracked => {
                let home = self.true_home(key.path())?;
                self.shards.record_remove(key, home);
                Some(home)
            }
        }
    }

    /// Folds this era's pending create bits into the published mirror:
    /// one staging pass under the cell's writer lock, one delta per
    /// touched home, one snapshot publish — HBA's broadcast-to-everyone
    /// replica-update traffic accounted per staged home. Touched homes
    /// are marked for the drain to reconcile their server-side
    /// published filters.
    ///
    /// Staging runs at the sequential publish cadence, not per batch: a
    /// home's creates accumulate in its staging buffer (every walk sees
    /// them through the overlay) until enough are pending to plausibly
    /// cross the drift threshold, so a typical batch pays one atomic
    /// load here and never touches the writer lock.
    fn commit_concurrent(&self) {
        let gate = self.config.publish_gate();
        if self.shards.unpublished_create_count() < gate {
            return;
        }
        // Extraction transfers ownership of the ripe fingerprints to
        // this committer, so racing committers stage disjoint sets.
        let pending = self.shards.stage_ripe_creates(gate);
        if pending.is_empty() {
            return;
        }
        let model = self.config.latency.clone();
        // The writer lock serializes staging with every other publisher
        // (owner pushes, retire/restore handles), so each delta applies
        // to exactly the columns it was computed against.
        let mut writer = self.shared.edit();
        let work = (*writer.base()).clone();
        let recipients = self.mdss.len().saturating_sub(1);
        let mut ops: Vec<SlabOp> = Vec::new();
        let mut staged: Vec<MdsId> = Vec::new();
        for (home, fps) in pending {
            // Absent column ⇒ the home is retired; its creates wait in
            // the shard log for the owner drain.
            let Some(old) = work.slab.extract(home) else {
                continue;
            };
            let mut fresh = old.clone();
            for fp in &fps {
                fresh.insert_fp(fp);
            }
            let Ok(delta) = FilterDelta::between(&old, &fresh) else {
                continue;
            };
            if delta.is_empty() {
                continue;
            }
            if recipients > 0 {
                self.cstats.record_update(
                    recipients as u64,
                    delta.wire_bytes() as u64 * recipients as u64,
                    model.multicast_rtt(recipients),
                );
            }
            staged.push(home);
            ops.push(SlabOp::Delta(home, delta));
        }
        if !ops.is_empty() {
            publish_edit(&mut writer, work, &ops);
        }
        drop(writer);
        if !staged.is_empty() {
            self.shards.mark_staged(staged);
        }
    }

    /// Drains pending concurrent state if any exists (the cheap gate
    /// every `&mut` entry point passes through).
    fn maybe_drain(&mut self) {
        if self.shards.is_dirty() || self.cstats.is_dirty() {
            self.drain_concurrent();
        }
    }

    /// Reconciles everything the `&self` pipeline deferred: folds the
    /// atomic statistics, replays the shard write logs against the
    /// authoritative stores and live filters, and syncs each staged
    /// home's server-side published filter with its mirror column.
    /// Runs automatically at every `&mut` entry point; call explicitly
    /// before inspecting state through `&self` views
    /// ([`true_home`](HbaCluster::true_home),
    /// [`total_files`](HbaCluster::total_files)) after concurrent
    /// batches.
    pub fn drain_concurrent(&mut self) {
        let (hits, misses) = self.cstats.fold_into(&mut self.stats);
        self.mask_cache.life.absorb(hits, misses);
        if !self.shards.is_dirty() {
            return;
        }
        let (records, staged) = self.shards.take_all();
        for record in &records {
            match record.kind {
                WriteKind::Create(home) => {
                    self.mdss
                        .get_mut(&home)
                        .expect("pending create targets a live home")
                        .create_local_fp(&record.path, &record.fp);
                }
                WriteKind::Remove(home) => {
                    if let Some(mds) = self.mdss.get_mut(&home) {
                        mds.remove_local_fp(&record.path, &record.fp);
                    }
                }
            }
        }
        if !staged.is_empty() {
            let mut writer = self.shared.edit();
            let work = (*writer.base()).clone();
            let mut ops: Vec<SlabOp> = Vec::new();
            for &home in &staged {
                let Some(mds) = self.mdss.get_mut(&home) else {
                    continue;
                };
                let _ = mds.publish();
                let Some(column) = work.slab.extract(home) else {
                    continue;
                };
                if let Ok(delta) = FilterDelta::between(&column, mds.published()) {
                    if !delta.is_empty() {
                        ops.push(SlabOp::Delta(home, delta));
                    }
                }
            }
            if !ops.is_empty() {
                publish_edit(&mut writer, work, &ops);
            }
        }
    }

    /// Finishes a side-effect-free lookup: applies the contention
    /// inflation and stamps the pinned epoch, touching no statistics
    /// and no caches.
    fn readonly_outcome(
        &self,
        epoch: MembershipEpoch,
        entry: MdsId,
        home: Option<MdsId>,
        level: QueryLevel,
        latency: Duration,
        messages: u32,
    ) -> QueryOutcome {
        let latency = latency.mul_f64(self.config.contention_factor(messages));
        QueryOutcome {
            home,
            level,
            latency,
            messages,
            entry,
            epoch,
        }
    }

    /// Per-MDS filter memory: own filter + LRU + `N − 1` replicas.
    #[must_use]
    pub fn filter_memory_bytes(&self, id: MdsId) -> usize {
        let held = self.mdss.len().saturating_sub(1);
        self.mdss
            .get(&id)
            .map_or(0, |mds| mds.filter_memory_bytes(held))
    }
}

impl VectoredScheme for HbaCluster {
    fn resolve_entry(&mut self, policy: EntryPolicy, op_index: usize) -> MdsId {
        self.entry_for(policy, op_index)
    }

    fn repeat_sensitive(&self) -> bool {
        // No LRU level ⇒ no per-entry fill a repeat could observe (this
        // is every BFA, which runs with `lru_capacity = 0`).
        self.config().lru_capacity > 0
    }

    fn batch_begin(&mut self) {
        self.maybe_drain();
        if self.mask_cache.life.arm(self.config.mask_cache) {
            self.mask_cache.clear();
        }
    }

    fn batch_end(&mut self) {
        if self.mask_cache.life.disarm(self.config.mask_cache) {
            self.mask_cache.clear();
        }
    }

    fn lookup_fused(&mut self, queries: &[(MdsId, &PathKey)]) -> Vec<QueryOutcome> {
        let prehashed: Vec<(MdsId, &str, Fingerprint)> = queries
            .iter()
            .map(|&(entry, key)| (entry, key.path(), *key.fingerprint()))
            .collect();
        self.lookup_batch_prehashed(&prehashed)
    }

    fn apply_create(&mut self, key: &PathKey, home: MdsId) {
        self.create_file_keyed(key, home);
    }

    fn apply_remove(&mut self, key: &PathKey) -> Option<MdsId> {
        self.remove_file_keyed(key)
    }
}

impl ConcurrentScheme for HbaCluster {
    /// An owned pin on the published mirror: lock-free to take, valid
    /// across successor publishes, never blocks a publisher while held.
    type Pinned = Arc<HbaSnapshot>;

    fn pin_batch(&self) -> Self::Pinned {
        self.shared.pin()
    }

    fn resolve_entry_concurrent(&self, policy: EntryPolicy, op_index: usize) -> MdsId {
        self.entry_for(policy, op_index)
    }

    fn lookup_fused_pinned(
        &self,
        pinned: &Self::Pinned,
        queries: &[(MdsId, &PathKey)],
    ) -> Vec<QueryOutcome> {
        self.fused_pinned(pinned, queries)
    }

    fn apply_create_concurrent(&self, key: &PathKey, home: MdsId) {
        self.apply_create_shared(key, home);
    }

    fn apply_remove_concurrent(&self, key: &PathKey) -> Option<MdsId> {
        self.apply_remove_shared(key)
    }

    fn commit_batch(&self, _pinned: &Self::Pinned) {
        self.commit_concurrent();
    }
}

impl ghba_core::MetadataService for HbaCluster {
    fn scheme_name(&self) -> &'static str {
        "HBA"
    }

    fn server_count(&self) -> usize {
        self.server_count()
    }

    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome> {
        execute_vectored(self, batch)
    }

    fn execute_concurrent(&self, batch: &OpBatch) -> Vec<OpOutcome> {
        execute_vectored_concurrent(self, batch)
    }

    fn filter_memory_per_mds(&self) -> usize {
        let n = self.server_count();
        if n == 0 {
            return 0;
        }
        self.server_ids()
            .into_iter()
            .map(|id| self.filter_memory_bytes(id))
            .sum::<usize>()
            / n
    }

    fn set_shim_policy(&mut self, policy: EntryPolicy) {
        self.shim_entry = policy;
    }

    fn next_shim_policy(&mut self, ops: usize) -> EntryPolicy {
        self.shim_entry.advance(ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghba_core::MetadataService;

    fn config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(2_000)
            .with_seed(17)
    }

    #[test]
    fn files_are_findable() {
        let mut hba = HbaCluster::with_servers(config(), 8);
        for i in 0..100 {
            hba.create_file(&format!("/h/f{i}"));
        }
        hba.flush_all_updates();
        for i in 0..100 {
            let path = format!("/h/f{i}");
            let truth = hba.true_home(&path);
            assert_eq!(hba.lookup(&path).home, truth);
        }
    }

    #[test]
    fn join_migrates_all_n_replicas() {
        let mut hba = HbaCluster::with_servers(config(), 10);
        hba.reset_stats();
        let (_, report) = hba.add_mds_reported();
        assert_eq!(report.migrated_replicas, 10);
        assert_eq!(report.messages, 20);
    }

    #[test]
    fn update_broadcasts_to_everyone() {
        let mut hba = HbaCluster::with_servers(config(), 12);
        let home = hba.server_ids()[0];
        for i in 0..50 {
            hba.create_file_at(&format!("/u/f{i}"), home);
        }
        let report = hba.push_update(home);
        assert!(report.refreshed);
        assert_eq!(report.messages, 11);
    }

    #[test]
    fn memory_per_mds_scales_with_n() {
        let small = HbaCluster::with_servers(config(), 5);
        let large = HbaCluster::with_servers(config(), 20);
        assert!(large.filter_memory_per_mds() > small.filter_memory_per_mds() * 3);
    }

    #[test]
    fn repeated_lookup_hits_l1() {
        let mut hba = HbaCluster::with_servers(config(), 8);
        hba.create_file("/hot/file");
        hba.flush_all_updates();
        let entry = MdsId(0);
        let _ = hba.lookup_from(entry, "/hot/file");
        let second = hba.lookup_from(entry, "/hot/file");
        assert_eq!(second.level, QueryLevel::L1Lru);
    }

    #[test]
    fn removal_preserves_files() {
        let mut hba = HbaCluster::with_servers(config(), 6);
        for i in 0..60 {
            hba.create_file(&format!("/r/f{i}"));
        }
        let before = hba.total_files();
        hba.remove_mds(MdsId(2));
        assert_eq!(hba.total_files(), before);
        assert_eq!(hba.server_count(), 5);
        hba.flush_all_updates();
        for i in 0..60 {
            assert!(hba.lookup(&format!("/r/f{i}")).found());
        }
    }

    #[test]
    fn lookup_batch_matches_sequential_lookups() {
        let build = || {
            let mut hba = HbaCluster::with_servers(config(), 8);
            for i in 0..120 {
                hba.create_file(&format!("/batch/f{i}"));
            }
            hba.flush_all_updates();
            hba
        };
        let mut sequential = build();
        let mut batched = build();
        let queries: Vec<(MdsId, String)> = (0..32)
            .map(|i| {
                let path = if i % 8 == 7 {
                    format!("/absent/f{i}")
                } else {
                    format!("/batch/f{}", i * 3 % 120)
                };
                (MdsId(i % 8), path)
            })
            .collect();
        let borrowed: Vec<(MdsId, &str)> = queries
            .iter()
            .map(|(entry, path)| (*entry, path.as_str()))
            .collect();
        let expected: Vec<QueryOutcome> = borrowed
            .iter()
            .map(|&(entry, path)| sequential.lookup_from(entry, path))
            .collect();
        assert_eq!(batched.lookup_batch_from(&borrowed), expected);
    }

    #[test]
    fn nonexistent_resolves_to_miss() {
        let mut hba = HbaCluster::with_servers(config(), 6);
        let outcome = hba.lookup("/ghost");
        assert!(!outcome.found());
        assert_eq!(outcome.level, QueryLevel::Nonexistent);
    }

    /// An owner push for a server a handle retired must no-op (not
    /// panic inside the snapshot writer, which would poison the cell
    /// for every later publish), and the deferred delta must land after
    /// the restore so lookups find the files created while retired.
    #[test]
    fn push_update_for_retired_server_is_a_noop() {
        let mut hba = HbaCluster::with_servers(config(), 6);
        let target = MdsId(1);
        for i in 0..40 {
            hba.create_file_at(&format!("/pre/f{i}"), target);
        }
        hba.flush_all_updates();
        let handle = hba.reconfig_handle();
        let filter = handle.retire_mds(target).expect("column is published");
        for i in 0..40 {
            hba.create_file_at(&format!("/while-retired/f{i}"), target);
        }
        let report = hba.push_update(target);
        assert!(!report.refreshed, "retired push must not publish");
        assert_eq!(report.messages, 0);
        assert!(handle.restore_mds(target, &filter));
        // The cell is not poisoned: the deferred drift publishes now,
        // and the restored mirror resolves both eras of files.
        assert!(hba.push_update(target).refreshed);
        for i in 0..40 {
            assert_eq!(hba.lookup(&format!("/pre/f{i}")).home, Some(target));
            assert_eq!(
                hba.lookup(&format!("/while-retired/f{i}")).home,
                Some(target)
            );
        }
    }
}
