//! Baseline metadata schemes from the G-HBA paper's comparison (Table 1
//! and the evaluation figures):
//!
//! * [`HbaCluster`] — HBA (Zhu, Jiang & Wang): every server mirrors every
//!   filter; fast until the mirror outgrows RAM.
//! * [`BfaCluster`] — pure Bloom Filter Arrays (BFA8/BFA16), HBA without
//!   the LRU level; the Table 5 normalization baseline.
//! * [`HashPlacement`] — modular-hash replica placement, the
//!   reconfiguration strawman of Figure 11.
//!
//! All lookup-capable schemes implement
//! [`ghba_core::MetadataService`], so experiments drive them and G-HBA
//! through one interface.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bfa;
mod hashing;
mod hba;

pub use bfa::BfaCluster;
pub use hashing::{expected_hash_migrations, HashPlacement};
pub use hba::{HbaCluster, HbaReconfigHandle, HbaSnapshot};
