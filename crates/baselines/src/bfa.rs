//! Pure Bloom Filter Arrays — the BFA8/BFA16 baselines of Table 5.
//!
//! A BFA is HBA without the LRU level: each server replicates its filter
//! to everyone and queries probe the full array directly. The suffix is
//! the bit/file ratio (BFA8 = 8 bits per file, BFA16 = 16).

use ghba_core::{EntryPolicy, GhbaConfig, MdsId, OpBatch, OpOutcome};

use crate::hba::HbaCluster;

/// A pure Bloom filter array cluster (no LRU level).
#[derive(Debug, Clone)]
pub struct BfaCluster {
    inner: HbaCluster,
    name: &'static str,
}

impl BfaCluster {
    /// Creates a BFA cluster with the given bits-per-file ratio; ratios of
    /// 8 and 16 reproduce the paper's BFA8/BFA16 columns.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `bits_per_file` is not positive.
    #[must_use]
    pub fn with_servers(config: GhbaConfig, servers: usize, bits_per_file: f64) -> Self {
        let name = if (bits_per_file - 8.0).abs() < f64::EPSILON {
            "BFA8"
        } else if (bits_per_file - 16.0).abs() < f64::EPSILON {
            "BFA16"
        } else {
            "BFA"
        };
        let config = config
            .with_bits_per_file(bits_per_file)
            .with_lru_capacity(0);
        BfaCluster {
            inner: HbaCluster::with_servers(config, servers),
            name,
        }
    }

    /// Number of servers.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.inner.server_count()
    }

    /// Per-MDS filter memory in bytes.
    #[must_use]
    pub fn filter_memory_bytes(&self, id: MdsId) -> usize {
        self.inner.filter_memory_bytes(id)
    }

    /// Access to the underlying cluster for population and updates.
    pub fn inner_mut(&mut self) -> &mut HbaCluster {
        &mut self.inner
    }

    /// Access to the underlying cluster.
    #[must_use]
    pub fn inner(&self) -> &HbaCluster {
        &self.inner
    }

    /// A cloneable handle that retires/restores published mirrors
    /// concurrently with lookups (see
    /// [`crate::HbaReconfigHandle`]).
    #[must_use]
    pub fn reconfig_handle(&self) -> crate::HbaReconfigHandle {
        self.inner.reconfig_handle()
    }

    /// A side-effect-free lookup through `&self`, safe to run from many
    /// threads concurrently with handle-driven retire/restore churn
    /// (see [`HbaCluster::lookup_concurrent`]).
    #[must_use]
    pub fn lookup_concurrent(&self, entry: MdsId, path: &str) -> ghba_core::QueryOutcome {
        self.inner.lookup_concurrent(entry, path)
    }
}

impl ghba_core::MetadataService for BfaCluster {
    fn scheme_name(&self) -> &'static str {
        self.name
    }

    fn server_count(&self) -> usize {
        self.inner.server_count()
    }

    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome> {
        // A BFA is HBA without the LRU level (disabled by construction),
        // so the native batched pipeline is inherited wholesale.
        self.inner.execute(batch)
    }

    fn execute_concurrent(&self, batch: &OpBatch) -> Vec<OpOutcome> {
        // Same inheritance for the pin-once concurrent pipeline.
        self.inner.execute_concurrent(batch)
    }

    fn filter_memory_per_mds(&self) -> usize {
        self.inner.filter_memory_per_mds()
    }

    fn set_shim_policy(&mut self, policy: EntryPolicy) {
        ghba_core::MetadataService::set_shim_policy(&mut self.inner, policy);
    }

    fn next_shim_policy(&mut self, ops: usize) -> EntryPolicy {
        ghba_core::MetadataService::next_shim_policy(&mut self.inner, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghba_core::{MetadataService, QueryLevel};

    fn config() -> GhbaConfig {
        GhbaConfig::default()
            .with_filter_capacity(2_000)
            .with_seed(23)
    }

    #[test]
    fn names_follow_ratio() {
        assert_eq!(
            BfaCluster::with_servers(config(), 4, 8.0).scheme_name(),
            "BFA8"
        );
        assert_eq!(
            BfaCluster::with_servers(config(), 4, 16.0).scheme_name(),
            "BFA16"
        );
        assert_eq!(
            BfaCluster::with_servers(config(), 4, 12.0).scheme_name(),
            "BFA"
        );
    }

    #[test]
    fn no_lru_level_ever() {
        let mut bfa = BfaCluster::with_servers(config(), 6, 8.0);
        bfa.create("/x");
        bfa.inner_mut().flush_all_updates();
        for _ in 0..10 {
            let outcome = bfa.lookup("/x");
            assert_ne!(outcome.level, QueryLevel::L1Lru);
            assert!(outcome.found());
        }
    }

    #[test]
    fn bfa16_uses_twice_the_memory_of_bfa8() {
        let bfa8 = BfaCluster::with_servers(config(), 10, 8.0);
        let bfa16 = BfaCluster::with_servers(config(), 10, 16.0);
        let m8 = bfa8.filter_memory_per_mds();
        let m16 = bfa16.filter_memory_per_mds();
        let ratio = m16 as f64 / m8 as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }
}
