//! Cross-crate integration tests: workload → replay → cluster, scheme
//! comparisons, and determinism guarantees.

use ghba::baselines::{BfaCluster, HbaCluster};
use ghba::core::{GhbaCluster, GhbaConfig, MetadataService};
use ghba::replay::{populate, replay};
use ghba::trace::{intensify, WorkloadGenerator, WorkloadProfile};

fn config() -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(5)
        .with_filter_capacity(1_000)
        .with_bits_per_file(12.0)
        .with_update_threshold(64)
        .with_seed(99)
}

#[test]
fn replay_resolves_populated_files() {
    let mut cluster = GhbaCluster::with_servers(config(), 15);
    let generator = WorkloadGenerator::new(WorkloadProfile::res(), 4);
    populate(&mut cluster, (0..2_000).map(|i| generator.path_of(i)));
    cluster.flush_all_updates();
    let report = replay(&mut cluster, generator.take(5_000));
    assert_eq!(report.operations, 5_000);
    // Reads of the hot (low-index) Zipf head dominate; nearly all of them
    // must resolve. Creates/renames account for the rest.
    let lookups = report.found + report.missing;
    assert!(
        report.found as f64 / lookups as f64 > 0.5,
        "found {} of {lookups}",
        report.found
    );
    assert!(report.mean_latency() > core::time::Duration::ZERO);
    assert_eq!(report.levels.total(), lookups);
}

#[test]
fn replay_is_deterministic() {
    let run = || {
        let mut cluster = GhbaCluster::with_servers(config(), 10);
        let generator = WorkloadGenerator::new(WorkloadProfile::ins(), 5);
        populate(&mut cluster, (0..500).map(|i| generator.path_of(i)));
        cluster.flush_all_updates();
        let report = replay(&mut cluster, generator.take(2_000));
        (
            report.found,
            report.missing,
            report.messages,
            report.latency.mean(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn all_schemes_agree_on_ground_truth() {
    let mut ghba_cluster = GhbaCluster::with_servers(config(), 12);
    let mut hba_cluster = HbaCluster::with_servers(config(), 12);
    let mut bfa_cluster = BfaCluster::with_servers(config(), 12, 8.0);
    let services: [&mut dyn MetadataService; 3] =
        [&mut ghba_cluster, &mut hba_cluster, &mut bfa_cluster];
    for service in services {
        for i in 0..100 {
            service.create(&format!("/agree/f{i}"));
        }
        for i in 0..100 {
            let outcome = service.lookup(&format!("/agree/f{i}"));
            assert!(outcome.found(), "{}: lost f{i}", service.scheme_name());
        }
        assert!(!service.lookup("/agree/absent").found());
    }
}

#[test]
fn ghba_uses_less_filter_memory_than_hba() {
    let ghba_cluster = GhbaCluster::with_servers(config(), 20);
    let hba_cluster = HbaCluster::with_servers(config(), 20);
    let g = ghba_cluster.filter_memory_per_mds();
    let h = hba_cluster.filter_memory_per_mds();
    assert!(
        g * 2 < h,
        "G-HBA {g} bytes should be well under half of HBA {h}"
    );
}

#[test]
fn intensified_replay_spans_subtraces() {
    let profile = WorkloadProfile::hp();
    let mut cluster = GhbaCluster::with_servers(config(), 10);
    let stream = intensify(&profile, 5, 6);
    let paths: Vec<String> = stream.hot_paths(200).collect();
    assert_eq!(paths.len(), 1_000);
    populate(&mut cluster, paths.iter().cloned());
    cluster.flush_all_updates();
    let report = replay(&mut cluster, stream.take(3_000));
    assert_eq!(report.operations, 3_000);
    // All five subtraces contribute lookups.
    assert!(report.found > 0);
}

#[test]
fn update_traffic_scales_with_groups_not_servers() {
    // The Figure 12/15 property as an invariant: G-HBA's per-update
    // message count tracks the group count, HBA's tracks N. A huge
    // threshold suppresses auto-publish during population, so the explicit
    // push below always has pending changes regardless of hash family.
    let quiet = config().with_update_threshold(usize::MAX);
    let mut ghba_cluster = GhbaCluster::with_servers(quiet.clone(), 25); // 5 groups
    let mut hba_cluster = HbaCluster::with_servers(quiet, 25);
    let home_g = ghba_cluster.server_ids()[0];
    let home_h = hba_cluster.server_ids()[0];
    for i in 0..50 {
        ghba_cluster.create_file_at(&format!("/u/f{i}"), home_g);
        hba_cluster.create_file_at(&format!("/u/f{i}"), home_h);
    }
    let g = ghba_cluster.push_update(home_g);
    let h = hba_cluster.push_update(home_h);
    assert!(g.refreshed && h.refreshed);
    assert!(
        g.messages <= 8,
        "G-HBA update messages {} should track ~4 groups",
        g.messages
    );
    assert_eq!(h.messages, 24, "HBA updates broadcast to N−1");
}

#[test]
fn memory_pressure_hurts_hba_more() {
    // The Figures 8–10 crossover as an invariant.
    let tight = config().with_memory_per_mds(64 * 1024);
    let measure = |is_hba: bool| {
        let generator = WorkloadGenerator::new(WorkloadProfile::hp(), 8);
        let paths: Vec<String> = (0..1_500).map(|i| generator.path_of(i)).collect();
        let mut total = core::time::Duration::ZERO;
        if is_hba {
            let mut cluster = HbaCluster::with_servers(tight.clone(), 20);
            populate(&mut cluster, paths.iter().cloned());
            cluster.flush_all_updates();
            let report = replay(&mut cluster, generator.take(2_000));
            total += report.mean_latency();
        } else {
            let mut cluster = GhbaCluster::with_servers(tight.clone(), 20);
            populate(&mut cluster, paths.iter().cloned());
            cluster.flush_all_updates();
            let report = replay(&mut cluster, generator.take(2_000));
            total += report.mean_latency();
        }
        total
    };
    let hba_latency = measure(true);
    let ghba_latency = measure(false);
    assert!(
        hba_latency > ghba_latency,
        "under tight memory HBA ({hba_latency:?}) must be slower than G-HBA ({ghba_latency:?})"
    );
}
