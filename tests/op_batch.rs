//! Acceptance tests for the vectored operations API: mixed-op batches are
//! outcome-equivalent to sequential one-op-per-call execution across all
//! three schemes, renames migrate end to end, and `replay()` never
//! flushes its window because a write arrived.

use ghba::baselines::{BfaCluster, HbaCluster};
use ghba::core::{
    EntryPolicy, ExecutorConfig, GhbaCluster, GhbaConfig, MdsId, MetadataOp, MetadataService,
    OpBatch, OpOutcome, QueryOutcome,
};
use ghba::replay::replay;
use ghba::simnet::SimTime;
use ghba::trace::{MetaOp, TraceRecord};
use proptest::prelude::*;

fn config(seed: u64) -> GhbaConfig {
    GhbaConfig::default()
        .with_max_group_size(4)
        .with_filter_capacity(2_000)
        .with_bits_per_file(12.0)
        .with_update_threshold(64)
        .with_seed(seed)
}

/// One generated op over a small path pool (duplicates are the point:
/// flash-crowd repeats, create/remove/rename collisions).
#[derive(Debug, Clone)]
enum GenOp {
    Lookup(u16),
    Create(u16),
    Remove(u16),
    Rename(u16, u16),
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        6 => (0u16..40).prop_map(GenOp::Lookup),
        2 => (0u16..40).prop_map(GenOp::Create),
        1 => (0u16..40).prop_map(GenOp::Remove),
        1 => (0u16..40, 0u16..40).prop_map(|(a, b)| GenOp::Rename(a, b)),
    ]
}

fn path_of(f: u16) -> String {
    format!("/pool/f{f}")
}

fn batch_of(ops: &[GenOp], policy: EntryPolicy) -> OpBatch {
    let mut batch = OpBatch::new().with_entry(policy);
    for op in ops {
        match op {
            GenOp::Lookup(f) => batch.push_lookup(path_of(*f)),
            GenOp::Create(f) => batch.push_create(path_of(*f)),
            GenOp::Remove(f) => batch.push_remove(path_of(*f)),
            GenOp::Rename(a, b) => batch.push_rename(path_of(*a), format!("/renamed/f{b}")),
        }
    }
    batch
}

/// Executes the same ops one 1-op batch at a time — the sequential
/// baseline the mixed batch must match bit for bit. Under
/// `EntryPolicy::Random` both sides draw servers from the scheme RNG in
/// identical op order; under `RoundRobin` the per-op start is advanced so
/// op `i` maps to the same server either way.
fn sequential<S: MetadataService + ?Sized>(
    service: &mut S,
    ops: &[GenOp],
    policy: EntryPolicy,
) -> Vec<OpOutcome> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let policy = match policy {
                EntryPolicy::RoundRobin { start } => EntryPolicy::RoundRobin { start: start + i },
                other => other,
            };
            let batch = batch_of(std::slice::from_ref(op), policy);
            service
                .execute(&batch)
                .pop()
                .expect("one op in, one outcome out")
        })
        .collect()
}

/// Pre-populates a scheme with part of the pool and publishes.
fn seed_files<S: MetadataService + ?Sized>(service: &mut S) {
    let mut batch = OpBatch::new();
    for f in 0..30u16 {
        batch.push_create(path_of(f));
    }
    let _ = service.execute(&batch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole acceptance property: `execute` on a shuffled mixed
    /// batch is outcome-equivalent (homes, levels, latencies, messages)
    /// to the sequential one-op-per-call shim, for all three schemes.
    #[test]
    fn mixed_batch_matches_sequential_all_schemes(
        ops in proptest::collection::vec(arb_op(), 1..80),
        seed in 0u64..500,
        servers in 4usize..16,
    ) {
        // G-HBA.
        let mut batched = GhbaCluster::with_servers(config(seed), servers);
        let mut one_by_one = GhbaCluster::with_servers(config(seed), servers);
        seed_files(&mut batched);
        seed_files(&mut one_by_one);
        let got = batched.execute(&batch_of(&ops, EntryPolicy::Random));
        let want = sequential(&mut one_by_one, &ops, EntryPolicy::Random);
        prop_assert_eq!(&got, &want, "G-HBA diverged");
        prop_assert_eq!(batched.stats().levels, one_by_one.stats().levels);

        // HBA.
        let mut batched = HbaCluster::with_servers(config(seed), servers);
        let mut one_by_one = HbaCluster::with_servers(config(seed), servers);
        seed_files(&mut batched);
        seed_files(&mut one_by_one);
        let got = batched.execute(&batch_of(&ops, EntryPolicy::Random));
        let want = sequential(&mut one_by_one, &ops, EntryPolicy::Random);
        prop_assert_eq!(&got, &want, "HBA diverged");

        // BFA (8 bits/file, no LRU level).
        let mut batched = BfaCluster::with_servers(config(seed), servers, 8.0);
        let mut one_by_one = BfaCluster::with_servers(config(seed), servers, 8.0);
        seed_files(&mut batched);
        seed_files(&mut one_by_one);
        let got = batched.execute(&batch_of(&ops, EntryPolicy::Random));
        let want = sequential(&mut one_by_one, &ops, EntryPolicy::Random);
        prop_assert_eq!(&got, &want, "BFA diverged");
    }

    /// Parallel-execution acceptance across **all three schemes**: the
    /// data-parallel batch engine (worker counts 2, 4, 7; parallel floor
    /// dropped to 2 so every fused run takes the chunked path) is
    /// bit-identical to the sequential executor for the same mixed
    /// batch — homes, levels, latencies, message counts, entry servers.
    #[test]
    fn parallel_batch_matches_sequential_all_schemes(
        ops in proptest::collection::vec(arb_op(), 8..96),
        seed in 0u64..200,
        workers in prop_oneof![Just(2usize), Just(4), Just(7)],
    ) {
        let parallel_config = |seed: u64| {
            config(seed).with_executor(
                ExecutorConfig::default()
                    .with_workers(workers)
                    .with_min_parallel_batch(2),
            )
        };
        let batch = batch_of(&ops, EntryPolicy::Random);

        // G-HBA.
        let mut sequential = GhbaCluster::with_servers(config(seed), 9);
        let mut parallel = GhbaCluster::with_servers(parallel_config(seed), 9);
        seed_files(&mut sequential);
        seed_files(&mut parallel);
        let want = sequential.execute(&batch);
        let got = parallel.execute(&batch);
        prop_assert_eq!(&got, &want, "G-HBA diverged at {} workers", workers);
        prop_assert_eq!(sequential.stats().levels, parallel.stats().levels);

        // HBA.
        let mut sequential = HbaCluster::with_servers(config(seed), 9);
        let mut parallel = HbaCluster::with_servers(parallel_config(seed), 9);
        seed_files(&mut sequential);
        seed_files(&mut parallel);
        let want = sequential.execute(&batch);
        let got = parallel.execute(&batch);
        prop_assert_eq!(&got, &want, "HBA diverged at {} workers", workers);

        // BFA (8 bits/file, no LRU level).
        let mut sequential = BfaCluster::with_servers(config(seed), 9, 8.0);
        let mut parallel = BfaCluster::with_servers(parallel_config(seed), 9, 8.0);
        seed_files(&mut sequential);
        seed_files(&mut parallel);
        let want = sequential.execute(&batch);
        let got = parallel.execute(&batch);
        prop_assert_eq!(&got, &want, "BFA diverged at {} workers", workers);
    }

    /// The same equivalence under the deterministic round-robin policy
    /// (no RNG involved at all): op `i` is served by server
    /// `(start + i) % N` in both modes.
    #[test]
    fn mixed_batch_matches_sequential_round_robin(
        ops in proptest::collection::vec(arb_op(), 1..60),
        seed in 0u64..200,
        start in 0usize..32,
    ) {
        let mut batched = GhbaCluster::with_servers(config(seed), 9);
        let mut one_by_one = GhbaCluster::with_servers(config(seed), 9);
        seed_files(&mut batched);
        seed_files(&mut one_by_one);
        let policy = EntryPolicy::RoundRobin { start };
        let got = batched.execute(&batch_of(&ops, policy));
        let want = sequential(&mut one_by_one, &ops, policy);
        prop_assert_eq!(got, want);
    }
}

/// Rename migrates metadata: the new path resolves at the reported new
/// home, the old path misses — for every scheme.
#[test]
fn rename_round_trip_all_schemes() {
    let mut ghba_cluster = GhbaCluster::with_servers(config(7), 10);
    let mut hba_cluster = HbaCluster::with_servers(config(7), 10);
    let mut bfa_cluster = BfaCluster::with_servers(config(7), 10, 8.0);
    let services: [&mut dyn MetadataService; 3] =
        [&mut ghba_cluster, &mut hba_cluster, &mut bfa_cluster];
    for service in services {
        let mut batch = OpBatch::new();
        batch.push_create("/r/source");
        batch.push_rename("/r/source", "/r/target");
        batch.push_lookup("/r/target");
        batch.push_lookup("/r/source");
        let outcomes = service.execute(&batch);
        let name = service.scheme_name();
        let OpOutcome::Created { home: first_home } = outcomes[0] else {
            panic!("{name}: expected Created, got {:?}", outcomes[0]);
        };
        let OpOutcome::Renamed { old_home, new_home } = outcomes[1] else {
            panic!("{name}: expected Renamed, got {:?}", outcomes[1]);
        };
        assert_eq!(old_home, Some(first_home), "{name}: old home reported");
        assert!(new_home.is_some(), "{name}: new home reported");
        assert_eq!(
            outcomes[2].home(),
            new_home,
            "{name}: lookup-after-rename resolves the new home"
        );
        assert_eq!(outcomes[3].home(), None, "{name}: old path must miss");

        // Renaming a path that never existed is a no-op.
        assert_eq!(service.rename("/r/ghost", "/r/elsewhere"), (None, None));
        // And the legacy shims agree with the batch outcomes.
        assert_eq!(service.lookup("/r/target").home, new_home, "{name}");
    }
}

/// An instrumented service that records the shape of every `execute`
/// call, to prove replay admits mixed windows instead of flushing at
/// writes.
struct Recorder {
    inner: GhbaCluster,
    batches: Vec<Vec<&'static str>>,
}

impl MetadataService for Recorder {
    fn scheme_name(&self) -> &'static str {
        "recorder"
    }

    fn server_count(&self) -> usize {
        MetadataService::server_count(&self.inner)
    }

    fn execute(&mut self, batch: &OpBatch) -> Vec<OpOutcome> {
        self.batches.push(
            batch
                .ops()
                .iter()
                .map(|op| match op {
                    MetadataOp::Lookup(_) => "lookup",
                    MetadataOp::Create(_) => "create",
                    MetadataOp::Remove(_) => "remove",
                    MetadataOp::Rename { .. } => "rename",
                })
                .collect(),
        );
        self.inner.execute(batch)
    }

    fn filter_memory_per_mds(&self) -> usize {
        0
    }
}

fn record(op: MetaOp, path: &str) -> TraceRecord {
    TraceRecord {
        timestamp: SimTime::ZERO,
        op,
        path: path.to_owned(),
        rename_to: None,
        user: 0,
        host: 0,
        subtrace: 0,
    }
}

/// The replay acceptance criterion: a mixed create/lookup trace reaches
/// the service as whole mixed windows — writes never split the batch.
#[test]
fn replay_never_flushes_on_writes() {
    let mut recorder = Recorder {
        inner: GhbaCluster::with_servers(config(3), 8),
        batches: Vec::new(),
    };
    // 26 records interleaving stats and creates (plus an unlink and a
    // rename), well under one 128-op window.
    let mut records = Vec::new();
    for i in 0..12 {
        records.push(record(MetaOp::Stat, &format!("/w/f{}", i % 5)));
        records.push(record(MetaOp::Create, &format!("/w/new{i}")));
    }
    records.push(record(MetaOp::Unlink, "/w/new3"));
    records.push(record(MetaOp::Rename, "/w/new4"));
    let report = replay(&mut recorder, records);
    assert_eq!(report.operations, 26);
    // One execute call: every read and write of the trace in a single
    // mixed batch (the unlink contributes lookup + remove).
    assert_eq!(
        recorder.batches.len(),
        1,
        "writes must not flush the window"
    );
    let window = &recorder.batches[0];
    assert_eq!(window.len(), 27);
    assert!(window.contains(&"create") && window.contains(&"lookup"));
    assert!(window.contains(&"remove") && window.contains(&"rename"));
    // And the report still accounts the lookups (12 stats + 1 unlink
    // pre-lookup).
    assert_eq!(report.found + report.missing, 13);
}

/// Larger traces are split only at the 128-op window size, never at
/// op-kind boundaries.
#[test]
fn replay_windows_split_only_at_capacity() {
    const WINDOW: usize = 128; // replay's OP_WINDOW
    let mut recorder = Recorder {
        inner: GhbaCluster::with_servers(config(5), 8),
        batches: Vec::new(),
    };
    let mut records = Vec::new();
    for i in 0..400 {
        let op = if i % 3 == 0 {
            MetaOp::Create
        } else {
            MetaOp::Stat
        };
        records.push(record(op, &format!("/big/f{i}")));
    }
    let _ = replay(&mut recorder, records);
    assert!(recorder.batches.len() <= 400 / WINDOW + 1);
    for window in &recorder.batches[..recorder.batches.len() - 1] {
        assert!(
            window.len() >= WINDOW,
            "window flushed early: {}",
            window.len()
        );
    }
}

/// The shims and the batch agree on the pinned-entry policy.
#[test]
fn pinned_entry_serves_every_op_from_one_server() {
    let mut cluster = GhbaCluster::with_servers(config(11), 12);
    seed_files(&mut cluster);
    let entry = MdsId(2);
    let mut batch = OpBatch::new().with_entry(EntryPolicy::Pinned(entry));
    for f in 0..10u16 {
        batch.push_lookup(path_of(f));
    }
    let outcomes = cluster.execute(&batch);
    for outcome in &outcomes {
        let query: &QueryOutcome = outcome.query().expect("lookup outcome");
        assert_eq!(query.entry, entry);
        assert!(query.found());
    }
}
